//! Cache-line-granularity ECC: eight Hamming(72,64) words per 64-byte line,
//! and the resulting 64-bit [`EccFingerprint`] used by ESD.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hamming::{decode_word, CorrectedBit, DecodeWordError, ENC_TABLE};

/// Size of a cache line in bytes, matching the 64 B line the CPU core evicts.
pub const LINE_BYTES: usize = 64;
/// Number of 8-byte ECC words per cache line.
pub const WORDS_PER_LINE: usize = 8;

/// The per-line ECC value: one 8-bit SEC-DED code per 8-byte word.
///
/// `LineEcc` carries the raw codec material (it can correct errors via
/// [`decode_line`]); its packed 64-bit form is the dedup fingerprint
/// ([`EccFingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineEcc([u8; WORDS_PER_LINE]);

impl LineEcc {
    /// Creates a `LineEcc` from its eight per-word codes.
    #[must_use]
    pub fn new(words: [u8; WORDS_PER_LINE]) -> Self {
        LineEcc(words)
    }

    /// The per-word 8-bit codes.
    #[must_use]
    pub fn words(&self) -> &[u8; WORDS_PER_LINE] {
        &self.0
    }

    /// Packs the eight word codes into one little-endian 64-bit value.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        u64::from_le_bytes(self.0)
    }

    /// Unpacks a 64-bit value produced by [`LineEcc::to_u64`].
    #[must_use]
    pub fn from_u64(raw: u64) -> Self {
        LineEcc(raw.to_le_bytes())
    }
}

impl fmt::Display for LineEcc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineEcc({:#018x})", self.to_u64())
    }
}

impl From<LineEcc> for EccFingerprint {
    fn from(ecc: LineEcc) -> Self {
        EccFingerprint(ecc.to_u64())
    }
}

/// The 64-bit ECC-based fingerprint of a cache line.
///
/// Because the ECC is a deterministic function of the line content, the
/// fingerprint has the *filter property*: two lines with different
/// fingerprints are guaranteed to be different. Equal fingerprints imply only
/// *similarity* — ESD resolves those with a byte-by-byte comparison.
///
/// # Examples
///
/// ```
/// use esd_ecc::EccFingerprint;
/// let zero = EccFingerprint::of_line(&[0u8; 64]);
/// let ones = EccFingerprint::of_line(&[1u8; 64]);
/// assert_ne!(zero, ones); // definitely different content
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct EccFingerprint(u64);

impl EccFingerprint {
    /// Computes the fingerprint of a cache line.
    #[must_use]
    pub fn of_line(line: &[u8; LINE_BYTES]) -> Self {
        EccFingerprint::from(encode_line(line))
    }

    /// The raw 64-bit fingerprint value.
    #[must_use]
    pub fn to_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw 64-bit value.
    #[must_use]
    pub fn from_u64(raw: u64) -> Self {
        EccFingerprint(raw)
    }
}

impl fmt::Display for EccFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for EccFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for EccFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// Encodes a 64-byte cache line, producing one SEC-DED code per 8-byte word.
///
/// # Examples
///
/// ```
/// let line = [7u8; 64];
/// let ecc = esd_ecc::encode_line(&line);
/// let decode = esd_ecc::decode_line(&line, ecc).unwrap();
/// assert_eq!(decode.line, line);
/// ```
#[must_use]
pub fn encode_line(line: &[u8; LINE_BYTES]) -> LineEcc {
    LineEcc(line_codes(line))
}

/// The eight per-word codes of a line, dispatched to the `pshufb`
/// nibble-LUT backend when the kernel backend allows SIMD and the host has
/// it, and the scalar table fold otherwise — bit-exact either way.
#[must_use]
fn line_codes(line: &[u8; LINE_BYTES]) -> [u8; WORDS_PER_LINE] {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::available() {
        return crate::simd::line_codes(line);
    }
    line_codes_scalar(line)
}

/// Scalar bulk path: one pass over the 64 bytes, folding each byte's table
/// entry straight into its word's code — no u64 assembly, no per-word
/// parity popcounts. Bit-exact with per-word `encode_word` (the code is
/// XOR-linear; see `esd-ecc`'s equivalence tests).
#[must_use]
pub(crate) fn line_codes_scalar(line: &[u8; LINE_BYTES]) -> [u8; WORDS_PER_LINE] {
    let mut words = [0u8; WORDS_PER_LINE];
    for (word, chunk) in words.iter_mut().zip(line.chunks_exact(8)) {
        *word = ENC_TABLE[0][chunk[0] as usize]
            ^ ENC_TABLE[1][chunk[1] as usize]
            ^ ENC_TABLE[2][chunk[2] as usize]
            ^ ENC_TABLE[3][chunk[3] as usize]
            ^ ENC_TABLE[4][chunk[4] as usize]
            ^ ENC_TABLE[5][chunk[5] as usize]
            ^ ENC_TABLE[6][chunk[6] as usize]
            ^ ENC_TABLE[7][chunk[7] as usize];
    }
    words
}

/// Encodes a block of cache lines, appending one [`LineEcc`] per line to
/// `out` in order.
///
/// Four lines are interleaved per pass so the eight `ENC_TABLE` rows stay
/// hot across lanes; the lane-tail (final 1–3 lines) falls back to
/// [`encode_line`]. Bit-exact with per-line encoding at every block size.
pub fn encode_lines(lines: &[[u8; LINE_BYTES]], out: &mut Vec<LineEcc>) {
    out.reserve(lines.len());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::available() {
        // The SIMD encoder already processes a full line per call (two
        // 32-byte vectors under AVX2); no cross-line interleave needed.
        out.extend(lines.iter().map(|line| LineEcc(crate::simd::line_codes(line))));
        return;
    }
    let mut groups = lines.chunks_exact(4);
    for group in groups.by_ref() {
        let mut words = [[0u8; WORDS_PER_LINE]; 4];
        for w in 0..WORDS_PER_LINE {
            for l in 0..4 {
                let chunk = &group[l][w * 8..w * 8 + 8];
                words[l][w] = ENC_TABLE[0][chunk[0] as usize]
                    ^ ENC_TABLE[1][chunk[1] as usize]
                    ^ ENC_TABLE[2][chunk[2] as usize]
                    ^ ENC_TABLE[3][chunk[3] as usize]
                    ^ ENC_TABLE[4][chunk[4] as usize]
                    ^ ENC_TABLE[5][chunk[5] as usize]
                    ^ ENC_TABLE[6][chunk[6] as usize]
                    ^ ENC_TABLE[7][chunk[7] as usize];
            }
        }
        out.extend(words.map(LineEcc));
    }
    for line in groups.remainder() {
        out.push(encode_line(line));
    }
}

/// The result of decoding one protected cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineDecode {
    /// The (possibly corrected) line content.
    pub line: [u8; LINE_BYTES],
    /// Number of words in which a single-bit error was corrected.
    pub corrected_words: usize,
    /// Per-word correction detail: which bit (data, check, or overall
    /// parity) was repaired in each 8-byte word, `None` for clean words.
    pub corrected: [Option<CorrectedBit>; WORDS_PER_LINE],
}

impl LineDecode {
    /// Corrections that repaired a *stored ECC* bit (a check bit or the
    /// overall parity) rather than a data bit — i.e. the fingerprint
    /// material itself had drifted.
    #[must_use]
    pub fn corrected_ecc_bits(&self) -> usize {
        self.corrected
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    Some(CorrectedBit::Check(_)) | Some(CorrectedBit::OverallParity)
                )
            })
            .count()
    }
}

/// Error returned by [`decode_line`] when some word is uncorrectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeLineError {
    /// Index of the first uncorrectable 8-byte word within the line.
    pub word: usize,
    /// The per-word failure.
    pub source: DecodeWordError,
}

impl fmt::Display for DecodeLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uncorrectable error in word {}: {}", self.word, self.source)
    }
}

impl Error for DecodeLineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Decodes a stored cache line against its [`LineEcc`], correcting up to one
/// bit error per 8-byte word.
///
/// # Errors
///
/// Returns [`DecodeLineError`] if any word contains a double-bit (or wider)
/// error.
pub fn decode_line(
    line: &[u8; LINE_BYTES],
    ecc: LineEcc,
) -> Result<LineDecode, DecodeLineError> {
    // Bulk path: recompute every word's expected ECC in one table-driven
    // pass. A stored code that matches exactly proves the word clean (the
    // code's top bit is the overall parity, so an exact 8-bit match implies
    // zero syndrome AND clean parity) — the overwhelmingly common case, and
    // it skips all syndrome analysis. Only mismatching words go through the
    // full SEC-DED correction logic.
    let mut out = *line;
    let mut corrected_words = 0usize;
    let mut corrected = [None; WORDS_PER_LINE];
    let expected_codes = line_codes(line);
    for (w, chunk) in line.chunks_exact(8).enumerate() {
        if expected_codes[w] == ecc.0[w] {
            continue;
        }
        let data = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let decoded = decode_word(data, ecc.0[w])
            .map_err(|source| DecodeLineError { word: w, source })?;
        // Any successful decode of a mismatching word corrected a storage
        // error (data, check or parity bit).
        debug_assert!(decoded.corrected.is_some());
        corrected_words += 1;
        corrected[w] = decoded.corrected;
        out[w * 8..w * 8 + 8].copy_from_slice(&decoded.data.to_le_bytes());
    }
    Ok(LineDecode {
        line: out,
        corrected_words,
        corrected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of(pattern: impl Fn(usize) -> u8) -> [u8; LINE_BYTES] {
        let mut line = [0u8; LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = pattern(i);
        }
        line
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let line = line_of(|i| (i * 7) as u8);
        assert_eq!(EccFingerprint::of_line(&line), EccFingerprint::of_line(&line));
    }

    #[test]
    fn filter_property_on_single_byte_changes() {
        let a = line_of(|i| i as u8);
        for byte in 0..LINE_BYTES {
            let mut b = a;
            b[byte] ^= 0x01;
            assert_ne!(
                EccFingerprint::of_line(&a),
                EccFingerprint::of_line(&b),
                "single-bit change in byte {byte} left fingerprint unchanged"
            );
        }
    }

    #[test]
    fn block_encode_matches_per_line_at_every_tail_size() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65] {
            let lines: Vec<[u8; LINE_BYTES]> = (0..len)
                .map(|s| line_of(|i| (s * 37 + i * 3) as u8))
                .collect();
            let mut block = Vec::new();
            encode_lines(&lines, &mut block);
            assert_eq!(block.len(), len);
            for (i, l) in lines.iter().enumerate() {
                assert_eq!(block[i], encode_line(l), "line {i} of {len}");
            }
        }
    }

    #[test]
    fn line_round_trips_to_u64() {
        let line = line_of(|i| i.wrapping_mul(31) as u8);
        let ecc = encode_line(&line);
        assert_eq!(LineEcc::from_u64(ecc.to_u64()), ecc);
        assert_eq!(EccFingerprint::from(ecc).to_u64(), ecc.to_u64());
    }

    #[test]
    fn single_bit_error_in_every_byte_is_corrected() {
        let line = line_of(|i| (255 - i) as u8);
        let ecc = encode_line(&line);
        for byte in 0..LINE_BYTES {
            let mut stored = line;
            stored[byte] ^= 0x40;
            let decoded = decode_line(&stored, ecc).unwrap();
            assert_eq!(decoded.line, line);
            assert_eq!(decoded.corrected_words, 1);
            let word = byte / 8;
            assert!(
                matches!(decoded.corrected[word], Some(CorrectedBit::Data(_))),
                "byte {byte}: expected a data-bit correction in word {word}"
            );
            assert_eq!(decoded.corrected_ecc_bits(), 0);
        }
    }

    #[test]
    fn stored_ecc_bit_flip_is_corrected_and_attributed() {
        let line = line_of(|i| (i * 13) as u8);
        let good = encode_line(&line);
        for word in 0..WORDS_PER_LINE {
            for bit in 0..8u8 {
                let mut codes = *good.words();
                codes[word] ^= 1 << bit;
                let decoded = decode_line(&line, LineEcc::new(codes)).unwrap();
                assert_eq!(decoded.line, line, "data must come back untouched");
                assert_eq!(decoded.corrected_words, 1);
                assert_eq!(
                    decoded.corrected_ecc_bits(),
                    1,
                    "word {word} bit {bit}: a stored-ECC flip must be attributed to the ECC"
                );
            }
        }
    }

    #[test]
    fn two_errors_in_different_words_both_corrected() {
        let line = line_of(|i| (i ^ 0x5A) as u8);
        let ecc = encode_line(&line);
        let mut stored = line;
        stored[0] ^= 0x01; // word 0
        stored[63] ^= 0x80; // word 7
        let decoded = decode_line(&stored, ecc).unwrap();
        assert_eq!(decoded.line, line);
        assert_eq!(decoded.corrected_words, 2);
    }

    #[test]
    fn double_error_in_one_word_is_rejected() {
        let line = [0u8; LINE_BYTES];
        let ecc = encode_line(&line);
        let mut stored = line;
        stored[8] ^= 0b11; // two bit flips within word 1
        let err = decode_line(&stored, ecc).unwrap_err();
        assert_eq!(err.word, 1);
        assert_eq!(err.source, DecodeWordError::DoubleError);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn display_formats_are_nonempty() {
        let fp = EccFingerprint::of_line(&[3u8; LINE_BYTES]);
        assert!(!fp.to_string().is_empty());
        assert!(!format!("{fp:x}").is_empty());
        assert!(!format!("{fp:X}").is_empty());
        assert!(!encode_line(&[3u8; LINE_BYTES]).to_string().is_empty());
    }
}

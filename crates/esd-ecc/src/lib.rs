#![warn(missing_docs)]

//! Hamming(72,64) SEC-DED error-correcting codes and ECC-based cache-line
//! fingerprints, as used by the ESD deduplication scheme (HPCA 2023).
//!
//! Memory controllers that protect main memory with ECC compute, for every
//! 8-byte word, an 8-bit single-error-correct / double-error-detect (SEC-DED)
//! code. A 64-byte cache line therefore carries a 64-bit ECC value "for free".
//! ESD piggybacks on that value as a *similarity fingerprint*: because the
//! code is a deterministic function of the data, two lines with different ECC
//! values are **definitely different**, while two lines with equal ECC values
//! are *possibly* equal and must be byte-compared.
//!
//! This crate provides:
//!
//! * [`encode_word`] / [`decode_word`] — the per-word Hamming(72,64) SEC-DED
//!   codec (encode, syndrome decoding, single-bit correction, double-bit
//!   detection).
//! * [`encode_line`] / [`decode_line`] — the per-cache-line codec operating on
//!   [`LINE_BYTES`]-byte lines.
//! * [`EccFingerprint`] — the 64-bit per-line ECC value used as a dedup
//!   fingerprint, with the guaranteed *filter property*
//!   (`fp(a) != fp(b)  =>  a != b`).
//!
//! # Examples
//!
//! ```
//! use esd_ecc::{encode_line, EccFingerprint};
//!
//! let a = [0xAB_u8; 64];
//! let b = [0xCD_u8; 64];
//! let fa = EccFingerprint::of_line(&a);
//! let fb = EccFingerprint::of_line(&b);
//! // Different fingerprints prove the lines differ -- no byte compare needed.
//! assert_ne!(fa, fb);
//! assert_eq!(fa, EccFingerprint::from(encode_line(&a)));
//! ```

mod hamming;
pub mod hsiao;
mod line;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use hamming::{
    decode_word, encode_word, encode_word_ref, CorrectedBit, DecodeWordError, WordDecode,
};
pub use line::{
    decode_line, encode_line, encode_lines, DecodeLineError, EccFingerprint, LineDecode, LineEcc,
    LINE_BYTES, WORDS_PER_LINE,
};

/// Selects which SEC-DED code supplies the per-line ECC (and therefore the
/// dedup fingerprint). Both correct single-bit errors per 8-byte word; they
/// differ in the *structure* of their collision space, which matters for
/// fingerprint-based similarity detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccCodec {
    /// Classic Hamming + overall parity (this crate's primary codec).
    #[default]
    Hamming,
    /// Hsiao odd-weight-column code (what most real controllers ship).
    Hsiao,
}

impl EccCodec {
    /// Computes the packed 64-bit per-line ECC under this codec.
    ///
    /// # Examples
    ///
    /// ```
    /// use esd_ecc::EccCodec;
    /// let line = [7u8; 64];
    /// assert_ne!(
    ///     EccCodec::Hamming.line_fingerprint(&line),
    ///     EccCodec::Hsiao.line_fingerprint(&line),
    /// );
    /// ```
    #[must_use]
    pub fn line_fingerprint(self, line: &[u8; LINE_BYTES]) -> u64 {
        match self {
            EccCodec::Hamming => encode_line(line).to_u64(),
            EccCodec::Hsiao => hsiao::encode_line(line),
        }
    }

    /// Computes the packed 64-bit per-line ECC for a whole block of lines,
    /// appending one fingerprint per line to `out` in order.
    ///
    /// The Hamming codec routes through the 4-line interleaved
    /// [`encode_lines`] kernel; Hsiao stays scalar. Bit-exact with
    /// [`EccCodec::line_fingerprint`] per line at every block size.
    pub fn line_fingerprints(self, lines: &[[u8; LINE_BYTES]], out: &mut Vec<u64>) {
        match self {
            EccCodec::Hamming => {
                let mut codes = Vec::new();
                encode_lines(lines, &mut codes);
                out.extend(codes.iter().map(|c| c.to_u64()));
            }
            EccCodec::Hsiao => {
                out.extend(lines.iter().map(hsiao::encode_line));
            }
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EccCodec::Hamming => "Hamming",
            EccCodec::Hsiao => "Hsiao",
        }
    }
}

impl std::fmt::Display for EccCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EccFingerprint>();
        assert_send_sync::<LineEcc>();
        assert_send_sync::<DecodeWordError>();
        assert_send_sync::<DecodeLineError>();
    }
}

//! `pshufb` nibble-LUT backend for the Hamming(72,64) line encoder.
//!
//! The code is XOR-linear, so a word's 8-bit ECC is the XOR of eight
//! per-byte contributions `ENC_TABLE[j][byte_j]`. Each 256-entry table row
//! splits into two 16-entry nibble tables (`T[j][x] = TLO[j][x & 15] ^
//! THI[j][x >> 4]`, again by linearity), which is exactly the shape
//! `pshufb` evaluates: 16 parallel 4-bit lookups per instruction. A vector
//! of line bytes becomes a vector of contribution bytes in two shuffles
//! per byte position, and an XOR-fold within each 64-bit lane produces the
//! word's code — data parity, check bits and overall parity all at once,
//! because the tables already carry the full 8-bit contribution.
//!
//! The same pass drives both [`encode_line`](crate::encode_line) and the
//! expected-code (syndrome) comparison in
//! [`decode_line`](crate::decode_line); it is bit-exact with the scalar
//! `ENC_TABLE` fold by construction and by the equivalence tests below.
//!
//! All `unsafe` in the crate lives here, `#[target_feature]`-gated and
//! reachable only through [`available`], which checks the process
//! kernel-backend selector and the host CPUID bits.
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_set1_epi8,
    _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_srli_epi64,
    _mm256_storeu_si256, _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8,
    _mm_setzero_si128, _mm_shuffle_epi8, _mm_srli_epi16, _mm_srli_epi64, _mm_storeu_si128,
    _mm_xor_si128,
};

use crate::hamming::ENC_TABLE;
use crate::line::{LINE_BYTES, WORDS_PER_LINE};

/// Whether the SIMD line encoder may run (`pshufb` needs SSSE3; the wider
/// AVX2 form is picked automatically when present).
#[inline]
pub(crate) fn available() -> bool {
    esd_kernels::simd_allowed() && esd_kernels::cpu_features().ssse3
}

/// Low-nibble contribution tables: `TLO[j][n] = ENC_TABLE[j][n]` for
/// `n < 16`, replicated into both 128-bit halves for `vpshufb`.
const TLO: [[u8; 32]; 8] = nibble_tables(false);
/// High-nibble contribution tables: `THI[j][n] = ENC_TABLE[j][n << 4]`.
const THI: [[u8; 32]; 8] = nibble_tables(true);
/// Byte-position masks: `POS[j]` selects the bytes at position `j` within
/// every 8-byte word of a vector.
const POS: [[u8; 32]; 8] = position_masks();

const fn nibble_tables(high: bool) -> [[u8; 32]; 8] {
    let mut tables = [[0u8; 32]; 8];
    let mut j = 0;
    while j < 8 {
        let mut n = 0;
        while n < 16 {
            let value = if high { ENC_TABLE[j][n << 4] } else { ENC_TABLE[j][n] };
            tables[j][n] = value;
            tables[j][n + 16] = value;
            n += 1;
        }
        j += 1;
    }
    tables
}

const fn position_masks() -> [[u8; 32]; 8] {
    let mut masks = [[0u8; 32]; 8];
    let mut j = 0;
    while j < 8 {
        let mut p = j;
        while p < 32 {
            masks[j][p] = 0xFF;
            p += 8;
        }
        j += 1;
    }
    masks
}

/// Computes the eight per-word codes of a line, dispatching to the widest
/// `pshufb` form the host supports. Callers must have checked
/// [`available`].
#[inline]
pub(crate) fn line_codes(line: &[u8; LINE_BYTES]) -> [u8; WORDS_PER_LINE] {
    debug_assert!(available());
    if esd_kernels::cpu_features().avx2 {
        // SAFETY: `cpu_features().avx2` confirmed the `avx2` CPU feature
        // at runtime before taking this path.
        unsafe { line_codes_avx2(line) }
    } else {
        // SAFETY: `available` (debug-asserted above, checked by every
        // caller) confirmed the `ssse3`+`sse2` CPU features at runtime.
        unsafe { line_codes_ssse3(line) }
    }
}

/// AVX2 form: two 32-byte vectors per line, four words each.
///
/// # Safety
/// The host must support the `avx2` target feature.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn line_codes_avx2(line: &[u8; LINE_BYTES]) -> [u8; WORDS_PER_LINE] {
    // SAFETY: only avx2 vector ops below, provided by this function's
    // target_feature gate (upheld by the caller); all loads/stores are
    // in-bounds unaligned accesses on owned arrays and `const` tables.
    unsafe {
        let low_nibble = _mm256_set1_epi8(0x0f);
        let mut codes = [0u8; WORDS_PER_LINE];
        for half in 0..2 {
            let v = _mm256_loadu_si256(line.as_ptr().add(32 * half).cast::<__m256i>());
            let lo = _mm256_and_si256(v, low_nibble);
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_nibble);
            let mut acc = _mm256_setzero_si256();
            for j in 0..8 {
                let contrib = _mm256_xor_si256(
                    _mm256_shuffle_epi8(
                        _mm256_loadu_si256(TLO[j].as_ptr().cast::<__m256i>()),
                        lo,
                    ),
                    _mm256_shuffle_epi8(
                        _mm256_loadu_si256(THI[j].as_ptr().cast::<__m256i>()),
                        hi,
                    ),
                );
                let masked = _mm256_and_si256(
                    contrib,
                    _mm256_loadu_si256(POS[j].as_ptr().cast::<__m256i>()),
                );
                acc = _mm256_xor_si256(acc, masked);
            }
            // XOR-fold each 64-bit lane down to its low byte.
            acc = _mm256_xor_si256(acc, _mm256_srli_epi64::<32>(acc));
            acc = _mm256_xor_si256(acc, _mm256_srli_epi64::<16>(acc));
            acc = _mm256_xor_si256(acc, _mm256_srli_epi64::<8>(acc));
            let mut bytes = [0u8; 32];
            _mm256_storeu_si256(bytes.as_mut_ptr().cast::<__m256i>(), acc);
            codes[4 * half] = bytes[0];
            codes[4 * half + 1] = bytes[8];
            codes[4 * half + 2] = bytes[16];
            codes[4 * half + 3] = bytes[24];
        }
        codes
    }
}

/// SSSE3 form: four 16-byte vectors per line, two words each. The 32-byte
/// constant tables double as 16-byte LUTs — their two halves are
/// identical.
///
/// # Safety
/// The host must support the `ssse3` and `sse2` target features (checked
/// by [`available`]).
#[target_feature(enable = "ssse3", enable = "sse2")]
pub(crate) unsafe fn line_codes_ssse3(line: &[u8; LINE_BYTES]) -> [u8; WORDS_PER_LINE] {
    // SAFETY: only sse2/ssse3 vector ops below, provided by this function's
    // target_feature gate (upheld by the caller); all loads/stores are
    // in-bounds unaligned accesses on owned arrays and `const` tables.
    unsafe {
        let low_nibble = _mm_set1_epi8(0x0f);
        let mut codes = [0u8; WORDS_PER_LINE];
        for quarter in 0..4 {
            let v = _mm_loadu_si128(line.as_ptr().add(16 * quarter).cast::<__m128i>());
            let lo = _mm_and_si128(v, low_nibble);
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), low_nibble);
            let mut acc = _mm_setzero_si128();
            for j in 0..8 {
                let contrib = _mm_xor_si128(
                    _mm_shuffle_epi8(_mm_loadu_si128(TLO[j].as_ptr().cast::<__m128i>()), lo),
                    _mm_shuffle_epi8(_mm_loadu_si128(THI[j].as_ptr().cast::<__m128i>()), hi),
                );
                let masked =
                    _mm_and_si128(contrib, _mm_loadu_si128(POS[j].as_ptr().cast::<__m128i>()));
                acc = _mm_xor_si128(acc, masked);
            }
            acc = _mm_xor_si128(acc, _mm_srli_epi64::<32>(acc));
            acc = _mm_xor_si128(acc, _mm_srli_epi64::<16>(acc));
            acc = _mm_xor_si128(acc, _mm_srli_epi64::<8>(acc));
            let mut bytes = [0u8; 16];
            _mm_storeu_si128(bytes.as_mut_ptr().cast::<__m128i>(), acc);
            codes[2 * quarter] = bytes[0];
            codes[2 * quarter + 1] = bytes[8];
        }
        codes
    }
}

#[cfg(test)]
mod tests {
    use crate::line::line_codes_scalar;

    fn test_lines() -> Vec<[u8; 64]> {
        let mut lines = vec![[0u8; 64], [0xFF; 64]];
        let mut x = 0x0DDB_A11C_0FFE_E000u64;
        for _ in 0..64 {
            let mut line = [0u8; 64];
            for chunk in line.chunks_exact_mut(8) {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695040888963407);
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            lines.push(line);
        }
        lines
    }

    #[test]
    fn avx2_codes_match_scalar_tables() {
        if !(super::available() && esd_kernels::cpu_features().avx2) {
            return;
        }
        for line in test_lines() {
            // SAFETY: avx2 presence checked above.
            let simd = unsafe { super::line_codes_avx2(&line) };
            assert_eq!(simd, line_codes_scalar(&line));
        }
    }

    #[test]
    fn ssse3_codes_match_scalar_tables() {
        if !super::available() {
            return;
        }
        for line in test_lines() {
            // SAFETY: ssse3 presence checked above.
            let simd = unsafe { super::line_codes_ssse3(&line) };
            assert_eq!(simd, line_codes_scalar(&line));
        }
    }
}

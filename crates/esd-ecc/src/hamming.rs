//! The per-word Hamming(72,64) SEC-DED codec.
//!
//! The codeword has 72 bits: 64 data bits, 7 Hamming check bits and one
//! overall-parity bit. Check bits sit at the power-of-two positions
//! `1, 2, 4, 8, 16, 32, 64` of the (1-indexed) 71-bit Hamming codeword; data
//! bits fill the remaining positions `3..=71`. The eighth ECC bit is the
//! overall parity of the 71 Hamming bits, which upgrades single-error
//! correction to single-error-correct / double-error-detect (SEC-DED).

use std::error::Error;
use std::fmt;

/// Number of Hamming check bits (excluding the overall parity bit).
const CHECK_BITS: u32 = 7;
/// Highest used codeword position (1-indexed).
const MAX_POS: usize = 71;

/// `POS_OF_DATA[i]` is the 1-indexed codeword position of data bit `i`.
const POS_OF_DATA: [u8; 64] = build_pos_of_data();
/// `DATA_OF_POS[p]` is `data_index + 1` when position `p` holds a data bit,
/// or `0` when it holds a check bit (or is unused).
const DATA_OF_POS: [u8; MAX_POS + 1] = build_data_of_pos();
/// `CHECK_MASK[c]` selects the data bits covered by check bit `c`
/// (the check bit at position `1 << c`).
const CHECK_MASK: [u64; CHECK_BITS as usize] = build_check_masks();

const fn build_pos_of_data() -> [u8; 64] {
    let mut table = [0u8; 64];
    let mut pos = 1usize;
    let mut idx = 0usize;
    while pos <= MAX_POS {
        if !pos.is_power_of_two() {
            table[idx] = pos as u8;
            idx += 1;
        }
        pos += 1;
    }
    table
}

const fn build_data_of_pos() -> [u8; MAX_POS + 1] {
    let mut table = [0u8; MAX_POS + 1];
    let mut idx = 0usize;
    while idx < 64 {
        table[POS_OF_DATA[idx] as usize] = idx as u8 + 1;
        idx += 1;
    }
    table
}

const fn build_check_masks() -> [u64; CHECK_BITS as usize] {
    let mut masks = [0u64; CHECK_BITS as usize];
    let mut c = 0usize;
    while c < CHECK_BITS as usize {
        let mut i = 0usize;
        while i < 64 {
            if POS_OF_DATA[i] as usize & (1 << c) != 0 {
                masks[c] |= 1u64 << i;
            }
            i += 1;
        }
        c += 1;
    }
    masks
}

#[inline]
fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Const-evaluable mask-and-popcount encoder; the source of truth both
/// [`encode_word_ref`] and the [`ENC_TABLE`] construction share.
const fn encode_word_scalar(data: u64) -> u8 {
    let mut ecc = 0u8;
    let mut c = 0usize;
    while c < CHECK_BITS as usize {
        ecc |= (((data & CHECK_MASK[c]).count_ones() & 1) as u8) << c;
        c += 1;
    }
    // Overall parity over all 71 Hamming bits = data bits XOR check bits.
    let check_parity = ((ecc & 0x7F).count_ones() & 1) as u8;
    let overall = ((data.count_ones() & 1) as u8) ^ check_parity;
    ecc | (overall << 7)
}

/// `ENC_TABLE[j][v]` is the full 8-bit ECC of a word whose byte `j` is `v`
/// and whose other bytes are zero. The whole code (check bits *and*
/// overall-parity bit) is XOR-linear in the data, so any word's ECC is the
/// XOR-fold of eight table lookups — the hot path behind [`encode_word`]
/// and the bulk line codec.
pub(crate) const ENC_TABLE: [[u8; 256]; 8] = {
    let mut t = [[0u8; 256]; 8];
    let mut j = 0usize;
    while j < 8 {
        let mut v = 0usize;
        while v < 256 {
            t[j][v] = encode_word_scalar((v as u64) << (8 * j));
            v += 1;
        }
        j += 1;
    }
    t
};

/// Computes the 8-bit SEC-DED ECC for a 64-bit data word.
///
/// Bits `0..7` of the result are the seven Hamming check bits (bit `c`
/// corresponds to codeword position `1 << c`); bit 7 is the overall parity
/// over the 71 Hamming codeword bits.
///
/// This is the table-driven fast path (eight byte lookups XOR-folded);
/// [`encode_word_ref`] is the mask-and-popcount reference it is
/// property-tested against.
///
/// # Examples
///
/// ```
/// let ecc = esd_ecc::encode_word(0xDEAD_BEEF_CAFE_F00D);
/// let decoded = esd_ecc::decode_word(0xDEAD_BEEF_CAFE_F00D, ecc).unwrap();
/// assert_eq!(decoded.data, 0xDEAD_BEEF_CAFE_F00D);
/// ```
#[must_use]
#[inline]
pub fn encode_word(data: u64) -> u8 {
    let b = data.to_le_bytes();
    ENC_TABLE[0][b[0] as usize]
        ^ ENC_TABLE[1][b[1] as usize]
        ^ ENC_TABLE[2][b[2] as usize]
        ^ ENC_TABLE[3][b[3] as usize]
        ^ ENC_TABLE[4][b[4] as usize]
        ^ ENC_TABLE[5][b[5] as usize]
        ^ ENC_TABLE[6][b[6] as usize]
        ^ ENC_TABLE[7][b[7] as usize]
}

/// The reference encoder: seven masked parities plus the overall-parity
/// bit, computed directly from the positional definition of the code.
/// Bit-exact with [`encode_word`] (see the equivalence tests).
#[must_use]
pub fn encode_word_ref(data: u64) -> u8 {
    encode_word_scalar(data)
}

/// Which codeword bit a successful single-error correction flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectedBit {
    /// A data bit; the payload is the data bit index `0..64`.
    Data(u8),
    /// One of the seven Hamming check bits; the payload is the check index
    /// `0..7`.
    Check(u8),
    /// The overall-parity bit itself.
    OverallParity,
}

impl fmt::Display for CorrectedBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectedBit::Data(i) => write!(f, "data bit {i}"),
            CorrectedBit::Check(c) => write!(f, "check bit {c}"),
            CorrectedBit::OverallParity => write!(f, "overall parity bit"),
        }
    }
}

/// The result of decoding one protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordDecode {
    /// The (possibly corrected) data word.
    pub data: u64,
    /// `Some` when a single-bit error was detected and corrected.
    pub corrected: Option<CorrectedBit>,
}

/// Error returned by [`decode_word`] when the stored word cannot be
/// reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeWordError {
    /// A double-bit error was detected (non-zero syndrome, clean overall
    /// parity). SEC-DED detects but cannot correct this case.
    DoubleError,
    /// The syndrome points at an unused codeword position, which only a
    /// multi-bit error can produce.
    InvalidSyndrome(u8),
}

impl fmt::Display for DecodeWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeWordError::DoubleError => write!(f, "uncorrectable double-bit error"),
            DecodeWordError::InvalidSyndrome(s) => {
                write!(f, "multi-bit error produced invalid syndrome {s}")
            }
        }
    }
}

impl Error for DecodeWordError {}

/// Decodes a 64-bit word against its stored 8-bit ECC, correcting a
/// single-bit error if present.
///
/// # Errors
///
/// Returns [`DecodeWordError::DoubleError`] when a double-bit error is
/// detected, and [`DecodeWordError::InvalidSyndrome`] when the syndrome is
/// inconsistent with any single-bit flip (a sure sign of 3+ flipped bits).
///
/// # Examples
///
/// ```
/// let data = 0x0123_4567_89AB_CDEF_u64;
/// let ecc = esd_ecc::encode_word(data);
/// // Flip one data bit in "memory":
/// let decoded = esd_ecc::decode_word(data ^ (1 << 17), ecc).unwrap();
/// assert_eq!(decoded.data, data);
/// assert!(decoded.corrected.is_some());
/// ```
pub fn decode_word(data: u64, ecc: u8) -> Result<WordDecode, DecodeWordError> {
    let expected = encode_word(data);
    let syndrome = (expected ^ ecc) & 0x7F;
    // Overall parity across the *received* 72-bit codeword (possibly
    // corrupted data bits + the stored check and parity bits): zero when an
    // even number of bits flipped, one when an odd number flipped.
    let parity_mismatch = (parity64(data) ^ ((ecc.count_ones() & 1) as u8)) != 0;

    match (syndrome, parity_mismatch) {
        (0, false) => Ok(WordDecode {
            data,
            corrected: None,
        }),
        (0, true) => Ok(WordDecode {
            data,
            corrected: Some(CorrectedBit::OverallParity),
        }),
        (s, true) => {
            let pos = s as usize;
            if pos > MAX_POS {
                return Err(DecodeWordError::InvalidSyndrome(s));
            }
            if pos.is_power_of_two() {
                // A stored check bit flipped; the data itself is intact.
                Ok(WordDecode {
                    data,
                    corrected: Some(CorrectedBit::Check(pos.trailing_zeros() as u8)),
                })
            } else {
                let idx = DATA_OF_POS[pos] - 1;
                Ok(WordDecode {
                    data: data ^ (1u64 << idx),
                    corrected: Some(CorrectedBit::Data(idx)),
                })
            }
        }
        (_, false) => Err(DecodeWordError::DoubleError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_tables_are_consistent() {
        // 64 data positions, none a power of two, all distinct and <= 71.
        let mut seen = [false; MAX_POS + 1];
        for (i, &p) in POS_OF_DATA.iter().enumerate() {
            let p = p as usize;
            assert!((3..=MAX_POS).contains(&p), "data bit {i} at bad position {p}");
            assert!(!p.is_power_of_two());
            assert!(!seen[p], "position {p} reused");
            seen[p] = true;
            assert_eq!(DATA_OF_POS[p] as usize, i + 1);
        }
    }

    #[test]
    fn table_encoder_matches_reference_encoder() {
        let mut x = 0x0DDB_1A5E_5BAD_5EEDu64;
        for _ in 0..4096 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            assert_eq!(encode_word(x), encode_word_ref(x), "data {x:#018x}");
        }
        for special in [0u64, u64::MAX, 1, 1 << 63, 0x8080_8080_8080_8080] {
            assert_eq!(encode_word(special), encode_word_ref(special));
        }
    }

    #[test]
    fn encoder_is_xor_linear() {
        // The property ENC_TABLE relies on.
        let (a, b) = (0x1234_5678_9ABC_DEF0u64, 0x0F1E_2D3C_4B5A_6978u64);
        assert_eq!(encode_word_ref(a ^ b), encode_word_ref(a) ^ encode_word_ref(b));
        assert_eq!(encode_word_ref(0), 0);
    }

    #[test]
    fn clean_word_round_trips() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF, 0x8000_0000_0000_0001] {
            let ecc = encode_word(data);
            let d = decode_word(data, ecc).unwrap();
            assert_eq!(d.data, data);
            assert_eq!(d.corrected, None);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0x0123_4567_89AB_CDEF_u64;
        let ecc = encode_word(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            let d = decode_word(corrupted, ecc).unwrap();
            assert_eq!(d.data, data, "bit {bit} not corrected");
            assert_eq!(d.corrected, Some(CorrectedBit::Data(bit as u8)));
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_tolerated() {
        let data = 0xF0F0_F0F0_0F0F_0F0F_u64;
        let ecc = encode_word(data);
        for c in 0..7 {
            let d = decode_word(data, ecc ^ (1 << c)).unwrap();
            assert_eq!(d.data, data);
            assert_eq!(d.corrected, Some(CorrectedBit::Check(c as u8)));
        }
        let d = decode_word(data, ecc ^ 0x80).unwrap();
        assert_eq!(d.corrected, Some(CorrectedBit::OverallParity));
    }

    #[test]
    fn double_data_bit_flips_are_detected() {
        let data = 0x5555_AAAA_3333_CCCC_u64;
        let ecc = encode_word(data);
        for (a, b) in [(0u8, 1u8), (5, 40), (62, 63), (13, 31)] {
            let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(
                decode_word(corrupted, ecc),
                Err(DecodeWordError::DoubleError),
                "flips {a},{b} not detected"
            );
        }
    }

    #[test]
    fn data_plus_check_flip_is_detected_as_double() {
        let data = 0x1111_2222_3333_4444_u64;
        let ecc = encode_word(data);
        // One data bit + one check bit: parity stays clean, syndrome != 0.
        let res = decode_word(data ^ 1, ecc ^ 0b10);
        assert_eq!(res, Err(DecodeWordError::DoubleError));
    }

    #[test]
    fn ecc_differs_for_single_bit_data_changes() {
        // The code has minimum distance 4: changing one data bit must change
        // the check bits (otherwise single-bit errors would be undetectable).
        let data = 0u64;
        let base = encode_word(data);
        for bit in 0..64 {
            assert_ne!(encode_word(data ^ (1u64 << bit)), base);
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!DecodeWordError::DoubleError.to_string().is_empty());
        assert!(!DecodeWordError::InvalidSyndrome(99).to_string().is_empty());
        assert!(!CorrectedBit::Data(3).to_string().is_empty());
    }
}

//! The per-word Hamming(72,64) SEC-DED codec.
//!
//! The codeword has 72 bits: 64 data bits, 7 Hamming check bits and one
//! overall-parity bit. Check bits sit at the power-of-two positions
//! `1, 2, 4, 8, 16, 32, 64` of the (1-indexed) 71-bit Hamming codeword; data
//! bits fill the remaining positions `3..=71`. The eighth ECC bit is the
//! overall parity of the 71 Hamming bits, which upgrades single-error
//! correction to single-error-correct / double-error-detect (SEC-DED).

use std::error::Error;
use std::fmt;

/// Number of Hamming check bits (excluding the overall parity bit).
const CHECK_BITS: u32 = 7;
/// Highest used codeword position (1-indexed).
const MAX_POS: usize = 71;

/// `POS_OF_DATA[i]` is the 1-indexed codeword position of data bit `i`.
const POS_OF_DATA: [u8; 64] = build_pos_of_data();
/// `DATA_OF_POS[p]` is `data_index + 1` when position `p` holds a data bit,
/// or `0` when it holds a check bit (or is unused).
const DATA_OF_POS: [u8; MAX_POS + 1] = build_data_of_pos();
/// `CHECK_MASK[c]` selects the data bits covered by check bit `c`
/// (the check bit at position `1 << c`).
const CHECK_MASK: [u64; CHECK_BITS as usize] = build_check_masks();

const fn build_pos_of_data() -> [u8; 64] {
    let mut table = [0u8; 64];
    let mut pos = 1usize;
    let mut idx = 0usize;
    while pos <= MAX_POS {
        if !pos.is_power_of_two() {
            table[idx] = pos as u8;
            idx += 1;
        }
        pos += 1;
    }
    table
}

const fn build_data_of_pos() -> [u8; MAX_POS + 1] {
    let mut table = [0u8; MAX_POS + 1];
    let mut idx = 0usize;
    while idx < 64 {
        table[POS_OF_DATA[idx] as usize] = idx as u8 + 1;
        idx += 1;
    }
    table
}

const fn build_check_masks() -> [u64; CHECK_BITS as usize] {
    let mut masks = [0u64; CHECK_BITS as usize];
    let mut c = 0usize;
    while c < CHECK_BITS as usize {
        let mut i = 0usize;
        while i < 64 {
            if POS_OF_DATA[i] as usize & (1 << c) != 0 {
                masks[c] |= 1u64 << i;
            }
            i += 1;
        }
        c += 1;
    }
    masks
}

#[inline]
fn parity64(x: u64) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Computes the 8-bit SEC-DED ECC for a 64-bit data word.
///
/// Bits `0..7` of the result are the seven Hamming check bits (bit `c`
/// corresponds to codeword position `1 << c`); bit 7 is the overall parity
/// over the 71 Hamming codeword bits.
///
/// # Examples
///
/// ```
/// let ecc = esd_ecc::encode_word(0xDEAD_BEEF_CAFE_F00D);
/// let decoded = esd_ecc::decode_word(0xDEAD_BEEF_CAFE_F00D, ecc).unwrap();
/// assert_eq!(decoded.data, 0xDEAD_BEEF_CAFE_F00D);
/// ```
#[must_use]
pub fn encode_word(data: u64) -> u8 {
    let mut ecc = 0u8;
    for (c, mask) in CHECK_MASK.iter().enumerate() {
        ecc |= parity64(data & mask) << c;
    }
    // Overall parity over all 71 Hamming bits = data bits XOR check bits.
    let check_parity = ((ecc & 0x7F).count_ones() & 1) as u8;
    let overall = parity64(data) ^ check_parity;
    ecc | (overall << 7)
}

/// Which codeword bit a successful single-error correction flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectedBit {
    /// A data bit; the payload is the data bit index `0..64`.
    Data(u8),
    /// One of the seven Hamming check bits; the payload is the check index
    /// `0..7`.
    Check(u8),
    /// The overall-parity bit itself.
    OverallParity,
}

impl fmt::Display for CorrectedBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectedBit::Data(i) => write!(f, "data bit {i}"),
            CorrectedBit::Check(c) => write!(f, "check bit {c}"),
            CorrectedBit::OverallParity => write!(f, "overall parity bit"),
        }
    }
}

/// The result of decoding one protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordDecode {
    /// The (possibly corrected) data word.
    pub data: u64,
    /// `Some` when a single-bit error was detected and corrected.
    pub corrected: Option<CorrectedBit>,
}

/// Error returned by [`decode_word`] when the stored word cannot be
/// reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeWordError {
    /// A double-bit error was detected (non-zero syndrome, clean overall
    /// parity). SEC-DED detects but cannot correct this case.
    DoubleError,
    /// The syndrome points at an unused codeword position, which only a
    /// multi-bit error can produce.
    InvalidSyndrome(u8),
}

impl fmt::Display for DecodeWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeWordError::DoubleError => write!(f, "uncorrectable double-bit error"),
            DecodeWordError::InvalidSyndrome(s) => {
                write!(f, "multi-bit error produced invalid syndrome {s}")
            }
        }
    }
}

impl Error for DecodeWordError {}

/// Decodes a 64-bit word against its stored 8-bit ECC, correcting a
/// single-bit error if present.
///
/// # Errors
///
/// Returns [`DecodeWordError::DoubleError`] when a double-bit error is
/// detected, and [`DecodeWordError::InvalidSyndrome`] when the syndrome is
/// inconsistent with any single-bit flip (a sure sign of 3+ flipped bits).
///
/// # Examples
///
/// ```
/// let data = 0x0123_4567_89AB_CDEF_u64;
/// let ecc = esd_ecc::encode_word(data);
/// // Flip one data bit in "memory":
/// let decoded = esd_ecc::decode_word(data ^ (1 << 17), ecc).unwrap();
/// assert_eq!(decoded.data, data);
/// assert!(decoded.corrected.is_some());
/// ```
pub fn decode_word(data: u64, ecc: u8) -> Result<WordDecode, DecodeWordError> {
    let expected = encode_word(data);
    let syndrome = (expected ^ ecc) & 0x7F;
    // Overall parity across the *received* 72-bit codeword (possibly
    // corrupted data bits + the stored check and parity bits): zero when an
    // even number of bits flipped, one when an odd number flipped.
    let parity_mismatch = (parity64(data) ^ ((ecc.count_ones() & 1) as u8)) != 0;

    match (syndrome, parity_mismatch) {
        (0, false) => Ok(WordDecode {
            data,
            corrected: None,
        }),
        (0, true) => Ok(WordDecode {
            data,
            corrected: Some(CorrectedBit::OverallParity),
        }),
        (s, true) => {
            let pos = s as usize;
            if pos > MAX_POS {
                return Err(DecodeWordError::InvalidSyndrome(s));
            }
            if pos.is_power_of_two() {
                // A stored check bit flipped; the data itself is intact.
                Ok(WordDecode {
                    data,
                    corrected: Some(CorrectedBit::Check(pos.trailing_zeros() as u8)),
                })
            } else {
                let idx = DATA_OF_POS[pos] - 1;
                Ok(WordDecode {
                    data: data ^ (1u64 << idx),
                    corrected: Some(CorrectedBit::Data(idx)),
                })
            }
        }
        (_, false) => Err(DecodeWordError::DoubleError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_tables_are_consistent() {
        // 64 data positions, none a power of two, all distinct and <= 71.
        let mut seen = [false; MAX_POS + 1];
        for (i, &p) in POS_OF_DATA.iter().enumerate() {
            let p = p as usize;
            assert!((3..=MAX_POS).contains(&p), "data bit {i} at bad position {p}");
            assert!(!p.is_power_of_two());
            assert!(!seen[p], "position {p} reused");
            seen[p] = true;
            assert_eq!(DATA_OF_POS[p] as usize, i + 1);
        }
    }

    #[test]
    fn clean_word_round_trips() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF, 0x8000_0000_0000_0001] {
            let ecc = encode_word(data);
            let d = decode_word(data, ecc).unwrap();
            assert_eq!(d.data, data);
            assert_eq!(d.corrected, None);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0x0123_4567_89AB_CDEF_u64;
        let ecc = encode_word(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            let d = decode_word(corrupted, ecc).unwrap();
            assert_eq!(d.data, data, "bit {bit} not corrected");
            assert_eq!(d.corrected, Some(CorrectedBit::Data(bit as u8)));
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_tolerated() {
        let data = 0xF0F0_F0F0_0F0F_0F0F_u64;
        let ecc = encode_word(data);
        for c in 0..7 {
            let d = decode_word(data, ecc ^ (1 << c)).unwrap();
            assert_eq!(d.data, data);
            assert_eq!(d.corrected, Some(CorrectedBit::Check(c as u8)));
        }
        let d = decode_word(data, ecc ^ 0x80).unwrap();
        assert_eq!(d.corrected, Some(CorrectedBit::OverallParity));
    }

    #[test]
    fn double_data_bit_flips_are_detected() {
        let data = 0x5555_AAAA_3333_CCCC_u64;
        let ecc = encode_word(data);
        for (a, b) in [(0u8, 1u8), (5, 40), (62, 63), (13, 31)] {
            let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(
                decode_word(corrupted, ecc),
                Err(DecodeWordError::DoubleError),
                "flips {a},{b} not detected"
            );
        }
    }

    #[test]
    fn data_plus_check_flip_is_detected_as_double() {
        let data = 0x1111_2222_3333_4444_u64;
        let ecc = encode_word(data);
        // One data bit + one check bit: parity stays clean, syndrome != 0.
        let res = decode_word(data ^ 1, ecc ^ 0b10);
        assert_eq!(res, Err(DecodeWordError::DoubleError));
    }

    #[test]
    fn ecc_differs_for_single_bit_data_changes() {
        // The code has minimum distance 4: changing one data bit must change
        // the check bits (otherwise single-bit errors would be undetectable).
        let data = 0u64;
        let base = encode_word(data);
        for bit in 0..64 {
            assert_ne!(encode_word(data ^ (1u64 << bit)), base);
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        assert!(!DecodeWordError::DoubleError.to_string().is_empty());
        assert!(!DecodeWordError::InvalidSyndrome(99).to_string().is_empty());
        assert!(!CorrectedBit::Data(3).to_string().is_empty());
    }
}

//! Property-based tests for the Hamming(72,64) codec and line fingerprints.

use esd_ecc::{
    decode_line, decode_word, encode_line, encode_word, encode_word_ref, CorrectedBit,
    EccFingerprint, LINE_BYTES,
};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = [u8; LINE_BYTES]> {
    proptest::array::uniform32(any::<u8>()).prop_flat_map(|a| {
        proptest::array::uniform32(any::<u8>()).prop_map(move |b| {
            let mut line = [0u8; LINE_BYTES];
            line[..32].copy_from_slice(&a);
            line[32..].copy_from_slice(&b);
            line
        })
    })
}

proptest! {
    /// Encoding is deterministic and clean decodes are identity.
    #[test]
    fn word_round_trip(data in any::<u64>()) {
        let ecc = encode_word(data);
        prop_assert_eq!(ecc, encode_word(data));
        let d = decode_word(data, ecc).unwrap();
        prop_assert_eq!(d.data, data);
        prop_assert_eq!(d.corrected, None);
    }

    /// Any single data-bit flip is corrected back to the original word.
    #[test]
    fn word_single_bit_correction(data in any::<u64>(), bit in 0u8..64) {
        let ecc = encode_word(data);
        let d = decode_word(data ^ (1u64 << bit), ecc).unwrap();
        prop_assert_eq!(d.data, data);
        prop_assert_eq!(d.corrected, Some(CorrectedBit::Data(bit)));
    }

    /// Any two distinct data-bit flips are detected as uncorrectable.
    #[test]
    fn word_double_bit_detection(data in any::<u64>(), a in 0u8..64, b in 0u8..64) {
        prop_assume!(a != b);
        let ecc = encode_word(data);
        let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert!(decode_word(corrupted, ecc).is_err());
    }

    /// The SEC-DED code has distance >= 4 over data bits: words differing in
    /// one or two bits never share an ECC, so the fingerprint filter never
    /// mistakes near-identical words.
    #[test]
    fn word_near_collision_freedom(data in any::<u64>(), a in 0u8..64, b in 0u8..64) {
        let one = data ^ (1u64 << a);
        prop_assert_ne!(encode_word(data), encode_word(one));
        if a != b {
            let two = one ^ (1u64 << b);
            prop_assert_ne!(encode_word(data), encode_word(two));
        }
    }

    /// Filter property at line granularity: equal content implies equal
    /// fingerprint (trivially), and a corrupted copy decodes back to the
    /// original under single-bit-per-word faults.
    #[test]
    fn line_round_trip_and_correction(line in arb_line(), byte in 0usize..LINE_BYTES, bit in 0u8..8) {
        let ecc = encode_line(&line);
        prop_assert_eq!(EccFingerprint::of_line(&line).to_u64(), ecc.to_u64());

        let mut stored = line;
        stored[byte] ^= 1 << bit;
        let decoded = decode_line(&stored, ecc).unwrap();
        prop_assert_eq!(decoded.line, line);
        prop_assert_eq!(decoded.corrected_words, 1);
    }

    /// Different fingerprints imply different content (the dedup filter
    /// soundness direction), checked by contrapositive on random pairs.
    #[test]
    fn fingerprint_filter_soundness(a in arb_line(), b in arb_line()) {
        if EccFingerprint::of_line(&a) != EccFingerprint::of_line(&b) {
            prop_assert_ne!(a, b);
        }
    }

    /// The byte-table word encoder is bit-exact with the scalar reference
    /// encoder on random words.
    #[test]
    fn table_encoder_matches_reference(data in any::<u64>()) {
        prop_assert_eq!(encode_word(data), encode_word_ref(data));
    }

    /// The single-pass line encoder equals the per-word reference encoder
    /// composed over the line's eight words (the seed's formulation).
    #[test]
    fn line_encoder_matches_per_word_reference(line in arb_line()) {
        let fast = encode_line(&line);
        for (w, chunk) in line.chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            prop_assert_eq!(fast.words()[w], encode_word_ref(word), "word {}", w);
        }
    }

    /// The decoder's exact-match fast path never masks a correctable fault:
    /// flipping any single ECC *or* data bit still round-trips the line.
    #[test]
    fn decode_fast_path_is_fault_transparent(line in arb_line(), word in 0usize..8, bit in 0u8..8) {
        let mut words = *encode_line(&line).words();
        words[word] ^= 1 << bit;
        let decoded = decode_line(&line, esd_ecc::LineEcc::new(words)).unwrap();
        prop_assert_eq!(decoded.line, line);
    }
}

//! Property-based tests for the hash/CRC implementations.

use esd_hash::{crc32, crc64, md5, sha1, Crc32, Crc64, Md5, Sha1};
use proptest::prelude::*;

proptest! {
    /// Streaming in arbitrary chunkings equals the one-shot digest.
    #[test]
    fn sha1_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                     cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut h = Md5::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), md5(&data));
    }

    #[test]
    fn crc_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut c = Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc32(&data));

        let mut c = Crc64::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc64(&data));
    }

    /// All fingerprints are deterministic functions.
    #[test]
    fn digests_are_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
        prop_assert_eq!(md5(&data), md5(&data));
        prop_assert_eq!(crc32(&data), crc32(&data));
        prop_assert_eq!(crc64(&data), crc64(&data));
    }

    /// Appending one byte always changes every digest (no trivial
    /// extension fixed points on random data).
    #[test]
    fn extension_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..128),
                                extra in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(extra);
        prop_assert_ne!(sha1(&data), sha1(&extended));
        prop_assert_ne!(md5(&data), md5(&extended));
        prop_assert_ne!(crc64(&data), crc64(&extended));
    }

    /// CRC linearity: crc(a xor b) relates a and b — here we check the
    /// weaker but load-bearing property that single-bit flips in a 64-byte
    /// line always change both CRCs.
    #[test]
    fn crc_detects_any_single_bit_flip(line in proptest::array::uniform32(any::<u8>()),
                                       byte in 0usize..32, bit in 0u8..8) {
        let mut flipped = line;
        flipped[byte] ^= 1 << bit;
        prop_assert_ne!(crc32(&line), crc32(&flipped));
        prop_assert_ne!(crc64(&line), crc64(&flipped));
    }

    /// The unrolled SHA-1 compression (circular 16-word schedule, phase
    /// split) is bit-exact with the plain reference formulation on random
    /// inputs of random lengths, including multi-block ones.
    #[test]
    fn sha1_fast_path_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha1(&data), esd_hash::reference::sha1(&data));
    }

    /// Same for the phase-split MD5 compression.
    #[test]
    fn md5_fast_path_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(md5(&data), esd_hash::reference::md5(&data));
    }
}

//! Property-based tests for the hash/CRC implementations.

use esd_hash::{crc32, crc64, md5, sha1, Crc32, Crc64, Md5, Sha1};
use proptest::prelude::*;

proptest! {
    /// Streaming in arbitrary chunkings equals the one-shot digest.
    #[test]
    fn sha1_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                     cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut h = Md5::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), md5(&data));
    }

    #[test]
    fn crc_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    cut in any::<prop::sample::Index>()) {
        let split = cut.index(data.len() + 1);
        let mut c = Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc32(&data));

        let mut c = Crc64::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc64(&data));
    }

    /// All fingerprints are deterministic functions.
    #[test]
    fn digests_are_deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
        prop_assert_eq!(md5(&data), md5(&data));
        prop_assert_eq!(crc32(&data), crc32(&data));
        prop_assert_eq!(crc64(&data), crc64(&data));
    }

    /// Appending one byte always changes every digest (no trivial
    /// extension fixed points on random data).
    #[test]
    fn extension_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..128),
                                extra in any::<u8>()) {
        let mut extended = data.clone();
        extended.push(extra);
        prop_assert_ne!(sha1(&data), sha1(&extended));
        prop_assert_ne!(md5(&data), md5(&extended));
        prop_assert_ne!(crc64(&data), crc64(&extended));
    }

    /// CRC linearity: crc(a xor b) relates a and b — here we check the
    /// weaker but load-bearing property that single-bit flips in a 64-byte
    /// line always change both CRCs.
    #[test]
    fn crc_detects_any_single_bit_flip(line in proptest::array::uniform32(any::<u8>()),
                                       byte in 0usize..32, bit in 0u8..8) {
        let mut flipped = line;
        flipped[byte] ^= 1 << bit;
        prop_assert_ne!(crc32(&line), crc32(&flipped));
        prop_assert_ne!(crc64(&line), crc64(&flipped));
    }

    /// The unrolled SHA-1 compression (circular 16-word schedule, phase
    /// split) is bit-exact with the plain reference formulation on random
    /// inputs of random lengths, including multi-block ones.
    #[test]
    fn sha1_fast_path_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha1(&data), esd_hash::reference::sha1(&data));
    }

    /// Same for the phase-split MD5 compression.
    #[test]
    fn md5_fast_path_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(md5(&data), esd_hash::reference::md5(&data));
    }

    /// The 4-lane interleaved SHA-1 kernel is bit-exact with the reference
    /// implementation on four independent random lines.
    #[test]
    fn sha1_four_lane_matches_reference(a in proptest::array::uniform32(any::<u8>()),
                                        b in proptest::array::uniform32(any::<u8>())) {
        let mut lines = [[0u8; 64]; 4];
        for (l, line) in lines.iter_mut().enumerate() {
            for i in 0..32 {
                line[i] = a[i].rotate_left(l as u32);
                line[32 + i] = b[i].wrapping_add(l as u8);
            }
        }
        let digests = esd_hash::sha1_lines4(&lines);
        for (digest, line) in digests.iter().zip(&lines) {
            prop_assert_eq!(*digest, esd_hash::reference::sha1(line));
        }
    }

    /// Same for the 4-lane MD5 kernel.
    #[test]
    fn md5_four_lane_matches_reference(a in proptest::array::uniform32(any::<u8>()),
                                       b in proptest::array::uniform32(any::<u8>())) {
        let mut lines = [[0u8; 64]; 4];
        for (l, line) in lines.iter_mut().enumerate() {
            for i in 0..32 {
                line[i] = a[i].wrapping_mul(2 * l as u8 + 1);
                line[32 + i] = b[i] ^ (l as u8 * 0x55);
            }
        }
        let digests = esd_hash::md5_lines4(&lines);
        for (digest, line) in digests.iter().zip(&lines) {
            prop_assert_eq!(*digest, esd_hash::reference::md5(line));
        }
    }

    /// Lane-tail batches (sizes straddling the 4-line groups, including the
    /// ISSUE-called-out 1, 3, 63, 65) produce digest-for-digest the scalar
    /// result through the batch drivers.
    #[test]
    fn hash_batches_match_reference_at_lane_tails(seed in proptest::array::uniform32(any::<u8>()),
                                                  pick in 0usize..8) {
        let len = [1usize, 2, 3, 4, 5, 63, 64, 65][pick];
        let lines: Vec<[u8; 64]> = (0..len)
            .map(|s| std::array::from_fn(|i| seed[i % 32].wrapping_add((s * 41 + i) as u8)))
            .collect();
        let mut sha = Vec::new();
        esd_hash::sha1_batch(&lines, &mut sha);
        let mut md = Vec::new();
        esd_hash::md5_batch(&lines, &mut md);
        prop_assert_eq!(sha.len(), len);
        prop_assert_eq!(md.len(), len);
        for (i, line) in lines.iter().enumerate() {
            prop_assert_eq!(sha[i], esd_hash::reference::sha1(line));
            prop_assert_eq!(md[i], esd_hash::reference::md5(line));
        }
    }
}

//! Batch drivers over the 4-lane hash kernels.
//!
//! The batched replay engine hands a whole struct-of-arrays block of cache
//! lines to the fingerprint stage at once. These helpers split such a block
//! into full 4-line groups for the interleaved kernels and finish the
//! lane-tail (the final 1–3 lines) with the scalar one-shot functions, so
//! every batch size produces exactly the digests the scalar path would.

use crate::{md5, md5_lines4, sha1, sha1_lines4, Md5Digest, Sha1Digest};

/// Hashes a block of 64-byte lines with the 4-lane SHA-1 kernel, appending
/// one digest per line to `out` in order. The tail lines that do not fill a
/// lane group fall back to the scalar kernel.
pub fn sha1_batch(lines: &[[u8; 64]], out: &mut Vec<Sha1Digest>) {
    out.reserve(lines.len());
    let mut groups = lines.chunks_exact(4);
    for group in groups.by_ref() {
        let group: &[[u8; 64]; 4] = group.try_into().expect("4 lines");
        out.extend(sha1_lines4(group));
    }
    for line in groups.remainder() {
        out.push(sha1(line));
    }
}

/// Hashes a block of 64-byte lines with the 4-lane MD5 kernel, appending one
/// digest per line to `out` in order; lane-tail handled by the scalar kernel.
pub fn md5_batch(lines: &[[u8; 64]], out: &mut Vec<Md5Digest>) {
    out.reserve(lines.len());
    let mut groups = lines.chunks_exact(4);
    for group in groups.by_ref() {
        let group: &[[u8; 64]; 4] = group.try_into().expect("4 lines");
        out.extend(md5_lines4(group));
    }
    for line in groups.remainder() {
        out.push(md5(line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seed: usize) -> [u8; 64] {
        std::array::from_fn(|i| (seed * 67 + i * 13) as u8)
    }

    #[test]
    fn batches_match_scalar_at_every_tail_size() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 63, 64, 65] {
            let lines: Vec<[u8; 64]> = (0..len).map(line).collect();
            let mut sha = Vec::new();
            let mut md = Vec::new();
            sha1_batch(&lines, &mut sha);
            md5_batch(&lines, &mut md);
            assert_eq!(sha.len(), len);
            assert_eq!(md.len(), len);
            for (i, l) in lines.iter().enumerate() {
                assert_eq!(sha[i], sha1(l), "sha1 lane mismatch at {i}/{len}");
                assert_eq!(md[i], md5(l), "md5 lane mismatch at {i}/{len}");
            }
        }
    }

    #[test]
    fn batch_appends_to_existing_output() {
        let lines = [line(1), line(2)];
        let mut out = vec![sha1(b"sentinel")];
        sha1_batch(&lines, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], sha1(b"sentinel"));
        assert_eq!(out[1], sha1(&lines[0]));
    }
}

//! Reference implementations of the hash compression functions.
//!
//! These are the original, deliberately plain formulations — SHA-1 with a
//! pre-expanded 80-word schedule and a per-round `match` for `(f, k)`, MD5
//! with a per-round `match` for `(f, g)` — kept verbatim so the unrolled
//! fast paths in [`crate::Sha1`] and [`crate::Md5`] have an independent
//! implementation to be property-tested against. Nothing on a hot path
//! calls into this module.

use crate::{Md5Digest, Sha1Digest};

/// One SHA-1 block compression over `state`, reference formulation.
pub fn sha1_compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
            20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
            _ => (b ^ c ^ d, 0xCA62_C1D6),
        };
        let temp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = temp;
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// One MD5 block compression over `state`, reference formulation.
pub fn md5_compress(state: &mut [u32; 4], block: &[u8; 64]) {
    // Per-round shift amounts and sine-derived constants (RFC 1321).
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let mut m = [0u32; 16];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        m[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
    }

    let [mut a, mut b, mut c, mut d] = *state;
    for i in 0..64 {
        let (f, g) = match i {
            0..=15 => ((b & c) | ((!b) & d), i),
            16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
            32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let f = f.wrapping_add(a).wrapping_add(K[i]).wrapping_add(m[g]);
        a = d;
        d = c;
        c = b;
        b = b.wrapping_add(f.rotate_left(S[i]));
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// One-shot reference SHA-1: plain padding plus [`sha1_compress`].
#[must_use]
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut state = [
        0x6745_2301u32,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    for block in padded_blocks(data, false) {
        sha1_compress(&mut state, &block);
    }
    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Sha1Digest(out)
}

/// One-shot reference MD5: plain padding plus [`md5_compress`].
#[must_use]
pub fn md5(data: &[u8]) -> Md5Digest {
    let mut state = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    for block in padded_blocks(data, true) {
        md5_compress(&mut state, &block);
    }
    let mut out = [0u8; 16];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    Md5Digest(out)
}

/// Merkle–Damgård padding: 0x80, zeros to 56 mod 64, then the bit length
/// (little-endian for MD5, big-endian for SHA-1).
fn padded_blocks(data: &[u8], little_endian_length: bool) -> Vec<[u8; 64]> {
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    let bits = (data.len() as u64).wrapping_mul(8);
    if little_endian_length {
        msg.extend_from_slice(&bits.to_le_bytes());
    } else {
        msg.extend_from_slice(&bits.to_be_bytes());
    }
    msg.chunks_exact(64)
        .map(|c| c.try_into().expect("64-byte block"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sha1_hits_fips_vectors() {
        assert_eq!(sha1(b"").to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn reference_md5_hits_rfc_vectors() {
        assert_eq!(md5(b"").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5(b"abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn fast_paths_match_reference_across_lengths() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 37 % 256) as u8).collect();
        for len in [0usize, 1, 8, 55, 56, 57, 63, 64, 65, 128, 500, 1000] {
            assert_eq!(crate::sha1(&data[..len]), sha1(&data[..len]), "sha1 len {len}");
            assert_eq!(crate::md5(&data[..len]), md5(&data[..len]), "md5 len {len}");
        }
    }
}

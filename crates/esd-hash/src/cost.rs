//! Latency/energy cost model for fingerprint computation.
//!
//! The constants follow the ESD paper: 321 ns per cache line for SHA-1 and
//! 312 ns for MD5 (Section III-C), a lightweight tens-of-nanoseconds CRC
//! (DeWrite's fingerprint computation contributes roughly 10% of a 150 ns
//! write, Section IV-F), and *zero* for ECC, which the memory controller has
//! already computed for reliability. Energy constants follow the SHA-3
//! candidate measurement study the paper cites ([56], Westermann et al.),
//! scaled to one 64-byte cache line.

use serde::{Deserialize, Serialize};

/// The cost of computing one fingerprint over a 64-byte cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FingerprintCost {
    /// Latency in nanoseconds.
    pub latency_ns: u64,
    /// Energy in picojoules.
    pub energy_pj: u64,
    /// Width of the fingerprint in bits (drives metadata sizing).
    pub bits: u32,
}

/// The fingerprint families compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FingerprintKind {
    /// The ECC value the memory controller already computed — free.
    Ecc,
    /// SHA-1, used by the `Dedup_SHA1` full-deduplication baseline.
    Sha1,
    /// MD5, the other traditional hash fingerprint.
    Md5,
    /// CRC-32, the lightweight fingerprint used by DeWrite.
    Crc32,
    /// CRC-64, a wider CRC variant.
    Crc64,
}

impl FingerprintKind {
    /// All fingerprint kinds, in presentation order.
    pub const ALL: [FingerprintKind; 5] = [
        FingerprintKind::Ecc,
        FingerprintKind::Sha1,
        FingerprintKind::Md5,
        FingerprintKind::Crc32,
        FingerprintKind::Crc64,
    ];

    /// The paper's per-cache-line cost model for this fingerprint.
    #[must_use]
    pub fn cost(self) -> FingerprintCost {
        match self {
            // The ECC is produced by existing memory-controller logic for
            // reliability; intercepting it costs nothing extra.
            FingerprintKind::Ecc => FingerprintCost {
                latency_ns: 0,
                energy_pj: 0,
                bits: 64,
            },
            FingerprintKind::Sha1 => FingerprintCost {
                latency_ns: 321,
                energy_pj: 4800,
                bits: 160,
            },
            FingerprintKind::Md5 => FingerprintCost {
                latency_ns: 312,
                energy_pj: 4500,
                bits: 128,
            },
            FingerprintKind::Crc32 => FingerprintCost {
                latency_ns: 15,
                energy_pj: 450,
                bits: 32,
            },
            FingerprintKind::Crc64 => FingerprintCost {
                latency_ns: 18,
                energy_pj: 520,
                bits: 64,
            },
        }
    }

    /// Short display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FingerprintKind::Ecc => "ECC",
            FingerprintKind::Sha1 => "SHA1",
            FingerprintKind::Md5 => "MD5",
            FingerprintKind::Crc32 => "CRC32",
            FingerprintKind::Crc64 => "CRC64",
        }
    }

    /// Computes this fingerprint over a 64-byte cache line, compressed to a
    /// comparable 64-bit key (full-width digests are truncated, which only
    /// *raises* their modeled collision rate — conservative for baselines).
    ///
    /// The `Ecc` variant is computed in [`esd-ecc`] and not available here;
    /// this method covers the hash/CRC families. See
    /// [`FingerprintKind::compute_key`]'s `None` return.
    ///
    /// [`esd-ecc`]: https://docs.rs/esd-ecc
    #[must_use]
    pub fn compute_key(self, line: &[u8; 64]) -> Option<u64> {
        match self {
            FingerprintKind::Ecc => None,
            FingerprintKind::Sha1 => Some(crate::sha1(line).to_u64()),
            FingerprintKind::Md5 => Some(crate::md5(line).to_u64()),
            FingerprintKind::Crc32 => Some(u64::from(crate::crc32(line))),
            FingerprintKind::Crc64 => Some(crate::crc64(line)),
        }
    }

    /// Computes this fingerprint's 64-bit key over a whole block of lines,
    /// appending one key per line to `out` in order. SHA-1 and MD5 route
    /// through the 4-lane interleaved kernels (bit-exact with
    /// [`FingerprintKind::compute_key`] per line, including lane-tail
    /// batches); the CRC families stay scalar — their table lookups are
    /// already cheap enough that interleaving buys nothing.
    ///
    /// The `Ecc` variant appends nothing, mirroring `compute_key`'s `None`.
    pub fn compute_keys(self, lines: &[[u8; 64]], out: &mut Vec<u64>) {
        match self {
            FingerprintKind::Ecc => {}
            FingerprintKind::Sha1 => {
                let mut digests = Vec::new();
                crate::sha1_batch(lines, &mut digests);
                out.extend(digests.iter().map(|d| d.to_u64()));
            }
            FingerprintKind::Md5 => {
                let mut digests = Vec::new();
                crate::md5_batch(lines, &mut digests);
                out.extend(digests.iter().map(|d| d.to_u64()));
            }
            FingerprintKind::Crc32 => {
                out.extend(lines.iter().map(|l| u64::from(crate::crc32(l))));
            }
            FingerprintKind::Crc64 => {
                out.extend(lines.iter().map(|l| crate::crc64(l)));
            }
        }
    }
}

impl std::fmt::Display for FingerprintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_is_free_and_hashes_are_not() {
        assert_eq!(FingerprintKind::Ecc.cost().latency_ns, 0);
        assert_eq!(FingerprintKind::Ecc.cost().energy_pj, 0);
        for kind in [FingerprintKind::Sha1, FingerprintKind::Md5, FingerprintKind::Crc32] {
            assert!(kind.cost().latency_ns > 0, "{kind} should cost time");
            assert!(kind.cost().energy_pj > 0, "{kind} should cost energy");
        }
    }

    #[test]
    fn sha1_is_slower_than_crc() {
        assert!(FingerprintKind::Sha1.cost().latency_ns > FingerprintKind::Crc32.cost().latency_ns);
    }

    #[test]
    fn compute_key_is_deterministic_and_content_sensitive() {
        let a = [1u8; 64];
        let mut b = a;
        b[10] = 2;
        for kind in [
            FingerprintKind::Sha1,
            FingerprintKind::Md5,
            FingerprintKind::Crc32,
            FingerprintKind::Crc64,
        ] {
            let ka = kind.compute_key(&a).unwrap();
            assert_eq!(ka, kind.compute_key(&a).unwrap());
            assert_ne!(ka, kind.compute_key(&b).unwrap(), "{kind}");
        }
        assert!(FingerprintKind::Ecc.compute_key(&a).is_none());
    }

    #[test]
    fn compute_keys_matches_per_line_compute_key() {
        let lines: Vec<[u8; 64]> = (0..7)
            .map(|s: usize| std::array::from_fn(|i| (s * 31 + i) as u8))
            .collect();
        for kind in FingerprintKind::ALL {
            let mut batch = Vec::new();
            kind.compute_keys(&lines, &mut batch);
            let scalar: Vec<u64> = lines.iter().filter_map(|l| kind.compute_key(l)).collect();
            assert_eq!(batch, scalar, "{kind}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            FingerprintKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FingerprintKind::ALL.len());
    }
}

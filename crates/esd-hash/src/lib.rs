#![warn(missing_docs)]

//! Cryptographic and cyclic-redundancy fingerprint functions used by the
//! deduplication baselines that ESD is compared against.
//!
//! The ESD paper evaluates three fingerprint families:
//!
//! * **SHA-1** (and MD5) — the traditional content hash used by
//!   `Dedup_SHA1`-style full deduplication; collision-free in practice but
//!   costing hundreds of nanoseconds per cache line (321 ns for SHA-1,
//!   312 ns for MD5 per the paper's Section III-C).
//! * **CRC-32 / CRC-64** — the lightweight fingerprint used by DeWrite;
//!   cheap but with a much higher collision rate (paper Fig. 8), requiring a
//!   verify read.
//! * **ECC** — no computation at all (provided by [`esd-ecc`]); ESD's choice.
//!
//! All implementations here are from scratch and bit-exact against the
//! standard test vectors; [`FingerprintKind`] attaches the paper's
//! latency/energy model so simulation code can charge costs uniformly.
//!
//! [`esd-ecc`]: https://docs.rs/esd-ecc
//!
//! # Examples
//!
//! ```
//! use esd_hash::{sha1, Sha1Digest};
//!
//! let d = sha1(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d",
//! );
//! ```

mod cost;
mod crc;
mod lanes;
mod md5;
pub mod reference;
mod sha1;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use cost::{FingerprintCost, FingerprintKind};
pub use crc::{crc32, crc64, Crc32, Crc64};
pub use lanes::{md5_batch, sha1_batch};
pub use md5::{md5, md5_lines4, Md5, Md5Digest};
pub use sha1::{sha1, sha1_lines4, Sha1, Sha1Digest};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Sha1Digest>();
        assert_send_sync::<super::Md5Digest>();
        assert_send_sync::<super::FingerprintKind>();
    }
}

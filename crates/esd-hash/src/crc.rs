//! Table-driven CRC-32 (IEEE 802.3) and CRC-64 (XZ/ECMA-182 reflected),
//! the lightweight fingerprints used by the DeWrite baseline.

use std::fmt;

/// Reflected CRC-32 polynomial (IEEE 802.3): `0x04C11DB7` reversed.
const CRC32_POLY: u32 = 0xEDB8_8320;
/// Reflected CRC-64 polynomial (ECMA-182, as used by XZ): reversed.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC32_POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

fn crc64_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC64_POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Streaming CRC-32 (IEEE) checksummer.
///
/// # Examples
///
/// ```
/// use esd_hash::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finalize(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a checksummer in the initial (all-ones) state.
    #[must_use]
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc32_table();
        for &byte in data {
            self.0 = (self.0 >> 8) ^ table[((self.0 ^ u32::from(byte)) & 0xFF) as usize];
        }
    }

    /// Returns the final checksum.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl fmt::LowerHex for Crc32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Streaming CRC-64 (XZ) checksummer.
///
/// # Examples
///
/// ```
/// use esd_hash::Crc64;
/// let mut c = Crc64::new();
/// c.update(b"123456789");
/// assert_eq!(c.finalize(), 0x995D_C9BB_DF19_39FA);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Crc64(u64);

impl Default for Crc64 {
    fn default() -> Self {
        Crc64::new()
    }
}

impl Crc64 {
    /// Creates a checksummer in the initial (all-ones) state.
    #[must_use]
    pub fn new() -> Self {
        Crc64(u64::MAX)
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc64_table();
        for &byte in data {
            self.0 = (self.0 >> 8) ^ table[((self.0 ^ u64::from(byte)) & 0xFF) as usize];
        }
    }

    /// Returns the final checksum.
    #[must_use]
    pub fn finalize(self) -> u64 {
        self.0 ^ u64::MAX
    }
}

impl fmt::LowerHex for Crc64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Computes the CRC-32 (IEEE) of `data` in one shot.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Computes the CRC-64 (XZ) of `data` in one shot.
#[must_use]
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical "check" input for CRC catalogs.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc64_check_value() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 256) as u8).collect();
        for split in [0usize, 1, 7, 150, 299, 300] {
            let mut c32 = Crc32::new();
            c32.update(&data[..split]);
            c32.update(&data[split..]);
            assert_eq!(c32.finalize(), crc32(&data));

            let mut c64 = Crc64::new();
            c64.update(&data[..split]);
            c64.update(&data[split..]);
            assert_eq!(c64.finalize(), crc64(&data));
        }
    }

    #[test]
    fn crc_detects_single_bit_changes() {
        let base = [0x42u8; 64];
        let base32 = crc32(&base);
        let base64 = crc64(&base);
        for byte in 0..64 {
            let mut m = base;
            m[byte] ^= 1;
            assert_ne!(crc32(&m), base32);
            assert_ne!(crc64(&m), base64);
        }
    }
}

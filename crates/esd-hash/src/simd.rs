//! Hardware SIMD backends for the SHA-1 and MD5 kernels.
//!
//! Three implementations live here, all bit-exact with the scalar kernels
//! in `sha1.rs`/`md5.rs` (the proptests and in-module tests hold them to
//! it):
//!
//! * [`sha1_compress_ni`] — one SHA-1 compression through the SHA
//!   extensions (`sha1rnds4`/`sha1nexte`/`sha1msg1`/`sha1msg2`), the
//!   canonical Intel round sequence with ABCD packed in one vector and E
//!   carried separately.
//! * [`sha1_compress4_ssse3`] — the 4-wide message-schedule fallback for
//!   hosts without SHA-NI: four independent compressions run vertically,
//!   one SSE lane per message, exactly mirroring the scalar
//!   `sha1_compress4` interleave.
//! * [`md5_compress4_avx2`] — four independent MD5 compressions run
//!   vertically (AVX2-encoded 128-bit integer ops). Single-block MD5 stays
//!   scalar: each round depends on the previous, so only the 4-lane shape
//!   vectorizes.
//!
//! All `unsafe` in the crate lives here. Every kernel is
//! `#[target_feature]`-gated and must only be reached through the
//! `*_available` guards, which check the process kernel-backend selector
//! and the host CPUID bits.
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m128i, _mm_add_epi32, _mm_and_si128, _mm_loadu_si128, _mm_or_si128, _mm_set1_epi32,
    _mm_set_epi32, _mm_set_epi64x, _mm_sha1msg1_epu32, _mm_sha1msg2_epu32, _mm_sha1nexte_epu32,
    _mm_sha1rnds4_epu32, _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_sll_epi32, _mm_srl_epi32,
    _mm_storeu_si128, _mm_xor_si128,
};

/// Whether the SHA-NI path may run.
#[inline]
pub(crate) fn sha_ni_available() -> bool {
    esd_kernels::simd_allowed() && esd_kernels::cpu_features().sha
}

/// Whether the SSSE3 4-wide fallback may run.
#[inline]
pub(crate) fn ssse3_available() -> bool {
    esd_kernels::simd_allowed() && esd_kernels::cpu_features().ssse3
}

/// Whether the AVX2 4-lane MD5 path may run.
#[inline]
pub(crate) fn avx2_available() -> bool {
    esd_kernels::simd_allowed() && esd_kernels::cpu_features().avx2
}

/// One SHA-1 compression via the SHA extensions.
///
/// ABCD live in one vector (A in the top dword, hence the `0x1B` dword
/// reversal on load/store); E rides in the top dword of a second vector
/// and is advanced by `sha1nexte`. Each `sha1rnds4` executes four rounds
/// with the phase constant selected by its immediate.
///
/// # Safety
/// The host must support the `sha`, `ssse3` and `sse2` target features
/// (checked by [`sha_ni_available`]).
#[target_feature(enable = "sha", enable = "ssse3", enable = "sse2")]
pub(crate) unsafe fn sha1_compress_ni(state: &mut [u32; 5], block: &[u8; 64]) {
    // SAFETY: every intrinsic below requires only sha/ssse3/sse2, provided
    // by this function's target_feature gate (upheld by the caller); all
    // loads/stores are in-bounds unaligned accesses on owned arrays.
    unsafe {
        // Byte shuffle turning each 32-bit message word big-endian.
        let mask = _mm_set_epi64x(0x0001_0203_0405_0607, 0x0809_0a0b_0c0d_0e0f);

        let mut abcd = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);
        let abcd_save = abcd;
        let e0_save = e0;

        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast::<__m128i>()), mask);
        let mut msg1 =
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast::<__m128i>()), mask);
        let mut msg2 =
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast::<__m128i>()), mask);
        let mut msg3 =
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast::<__m128i>()), mask);

        // Rounds 0-3.
        e0 = _mm_add_epi32(e0, msg0);
        let mut e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);

        // Rounds 4-7.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);

        // Rounds 8-11.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 12-15.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 16-19.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 20-23.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 24-27.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 28-31.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 32-35.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 36-39.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 40-43.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 44-47.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 48-51.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 52-55.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 56-59.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 60-63.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 64-67.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 68-71.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 72-75.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);

        // Rounds 76-79.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);

        // Fold the compressed state into the chaining value.
        e0 = _mm_sha1nexte_epu32(e0, e0_save);
        abcd = _mm_add_epi32(abcd, abcd_save);

        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), abcd);
        let mut e_out = [0u32; 4];
        _mm_storeu_si128(e_out.as_mut_ptr().cast::<__m128i>(), e0);
        state[4] = e_out[3];
    }
}

/// Big-endian message word `i` of `block` as an `i32` for `_mm_set_epi32`.
#[inline]
fn be_word(block: &[u8; 64], i: usize) -> i32 {
    u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes")) as i32
}

/// Little-endian message word `i` of `block` as an `i32`.
#[inline]
fn le_word(block: &[u8; 64], i: usize) -> i32 {
    u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes")) as i32
}

/// Four SHA-1 compressions run vertically, one SSE lane per message —
/// the fallback for SHA-capable workloads on hosts without SHA-NI.
///
/// Lane `l` of every vector belongs to message `l`; the 16-word circular
/// message schedule and the four round phases mirror the scalar
/// `sha1_compress4` exactly, so the two are bit-identical.
///
/// # Safety
/// The host must support the `ssse3` and `sse2` target features (checked
/// by [`ssse3_available`]).
#[target_feature(enable = "ssse3", enable = "sse2")]
pub(crate) unsafe fn sha1_compress4_ssse3(states: &mut [[u32; 5]; 4], blocks: [&[u8; 64]; 4]) {
    // Rotate each 32-bit lane left by a constant.
    macro_rules! rotl {
        ($v:expr, $n:literal) => {
            _mm_or_si128(
                _mm_sll_epi32($v, _mm_set_epi32(0, 0, 0, $n)),
                _mm_srl_epi32($v, _mm_set_epi32(0, 0, 0, 32 - $n)),
            )
        };
    }

    // SAFETY: only sse2/ssse3 vector ops below, provided by this function's
    // target_feature gate (upheld by the caller); lane extraction at the end
    // stores to owned stack arrays.
    unsafe {
        // Transposed schedule: w[i] holds word i of all four messages.
        let mut w = [_mm_set1_epi32(0); 16];
        for (i, word) in w.iter_mut().enumerate() {
            *word = _mm_set_epi32(
                be_word(blocks[3], i),
                be_word(blocks[2], i),
                be_word(blocks[1], i),
                be_word(blocks[0], i),
            );
        }

        let mut a = _mm_set_epi32(
            states[3][0] as i32,
            states[2][0] as i32,
            states[1][0] as i32,
            states[0][0] as i32,
        );
        let mut b = _mm_set_epi32(
            states[3][1] as i32,
            states[2][1] as i32,
            states[1][1] as i32,
            states[0][1] as i32,
        );
        let mut c = _mm_set_epi32(
            states[3][2] as i32,
            states[2][2] as i32,
            states[1][2] as i32,
            states[0][2] as i32,
        );
        let mut d = _mm_set_epi32(
            states[3][3] as i32,
            states[2][3] as i32,
            states[1][3] as i32,
            states[0][3] as i32,
        );
        let mut e = _mm_set_epi32(
            states[3][4] as i32,
            states[2][4] as i32,
            states[1][4] as i32,
            states[0][4] as i32,
        );

        macro_rules! schedule {
            ($i:expr) => {{
                let next = rotl!(
                    _mm_xor_si128(
                        _mm_xor_si128(w[($i + 13) & 15], w[($i + 8) & 15]),
                        _mm_xor_si128(w[($i + 2) & 15], w[$i & 15]),
                    ),
                    1
                );
                w[$i & 15] = next;
                next
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let temp = _mm_add_epi32(
                    _mm_add_epi32(rotl!(a, 5), $f),
                    _mm_add_epi32(_mm_add_epi32(e, _mm_set1_epi32($k)), $wi),
                );
                e = d;
                d = c;
                c = rotl!(b, 30);
                b = a;
                a = temp;
            }};
        }
        // Ch(b, c, d) = (b & c) | (!b & d), as d ^ (b & (c ^ d)).
        macro_rules! ch {
            () => {
                _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d)))
            };
        }
        macro_rules! parity {
            () => {
                _mm_xor_si128(b, _mm_xor_si128(c, d))
            };
        }
        // Maj(b, c, d) = (b & c) | (b & d) | (c & d).
        macro_rules! maj {
            () => {
                _mm_or_si128(
                    _mm_and_si128(b, c),
                    _mm_and_si128(d, _mm_or_si128(b, c)),
                )
            };
        }

        // The compiler unrolls these; `i` drives the circular schedule.
        #[allow(clippy::needless_range_loop)]
        for i in 0..16 {
            let wi = w[i];
            round!(ch!(), 0x5A82_7999u32 as i32, wi);
        }
        for i in 16..20 {
            let wi = schedule!(i);
            round!(ch!(), 0x5A82_7999u32 as i32, wi);
        }
        for i in 20..40 {
            let wi = schedule!(i);
            round!(parity!(), 0x6ED9_EBA1u32 as i32, wi);
        }
        for i in 40..60 {
            let wi = schedule!(i);
            round!(maj!(), 0x8F1B_BCDCu32 as i32, wi);
        }
        for i in 60..80 {
            let wi = schedule!(i);
            round!(parity!(), 0xCA62_C1D6u32 as i32, wi);
        }

        let mut lanes = [[0u32; 4]; 5];
        _mm_storeu_si128(lanes[0].as_mut_ptr().cast::<__m128i>(), a);
        _mm_storeu_si128(lanes[1].as_mut_ptr().cast::<__m128i>(), b);
        _mm_storeu_si128(lanes[2].as_mut_ptr().cast::<__m128i>(), c);
        _mm_storeu_si128(lanes[3].as_mut_ptr().cast::<__m128i>(), d);
        _mm_storeu_si128(lanes[4].as_mut_ptr().cast::<__m128i>(), e);
        for (l, state) in states.iter_mut().enumerate() {
            for (word, lane) in state.iter_mut().zip(&lanes) {
                *word = word.wrapping_add(lane[l]);
            }
        }
    }
}

/// Four MD5 compressions run vertically, one lane per message, compiled
/// with AVX2 enabled (three-operand VEX forms of the 128-bit integer ops).
///
/// Mirrors the scalar `md5_compress4` phase structure; the message-word
/// index and shift amount are uniform across lanes within a round, which
/// is what makes the vertical form work.
///
/// # Safety
/// The host must support the `avx2` target feature (checked by
/// [`avx2_available`]).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn md5_compress4_avx2(states: &mut [[u32; 4]; 4], blocks: [&[u8; 64]; 4]) {
    // Rotate each 32-bit lane left by a runtime amount (MD5's shift varies
    // within a phase, so the count rides in a vector register).
    macro_rules! rotl_var {
        ($v:expr, $n:expr) => {
            _mm_or_si128(
                _mm_sll_epi32($v, _mm_set_epi32(0, 0, 0, $n as i32)),
                _mm_srl_epi32($v, _mm_set_epi32(0, 0, 0, 32 - $n as i32)),
            )
        };
    }

    // SAFETY: only sse2-class vector ops (VEX-encoded under this function's
    // avx2 target_feature gate, upheld by the caller); lane extraction at
    // the end stores to owned stack arrays.
    unsafe {
        // Transposed message: m[g] holds word g of all four blocks.
        let mut m = [_mm_set1_epi32(0); 16];
        for (g, word) in m.iter_mut().enumerate() {
            *word = _mm_set_epi32(
                le_word(blocks[3], g),
                le_word(blocks[2], g),
                le_word(blocks[1], g),
                le_word(blocks[0], g),
            );
        }

        let mut a = _mm_set_epi32(
            states[3][0] as i32,
            states[2][0] as i32,
            states[1][0] as i32,
            states[0][0] as i32,
        );
        let mut b = _mm_set_epi32(
            states[3][1] as i32,
            states[2][1] as i32,
            states[1][1] as i32,
            states[0][1] as i32,
        );
        let mut c = _mm_set_epi32(
            states[3][2] as i32,
            states[2][2] as i32,
            states[1][2] as i32,
            states[0][2] as i32,
        );
        let mut d = _mm_set_epi32(
            states[3][3] as i32,
            states[2][3] as i32,
            states[1][3] as i32,
            states[0][3] as i32,
        );

        macro_rules! round {
            ($f:expr, $g:expr, $i:expr) => {{
                let t = _mm_add_epi32(
                    _mm_add_epi32($f, a),
                    _mm_add_epi32(_mm_set1_epi32(crate::md5::K[$i] as i32), m[$g]),
                );
                let next_b = _mm_add_epi32(b, rotl_var!(t, crate::md5::S[$i]));
                a = d;
                d = c;
                c = b;
                b = next_b;
            }};
        }

        let ones = _mm_set1_epi32(-1);
        // F(b, c, d) = (b & c) | (!b & d), as d ^ (b & (c ^ d)).
        macro_rules! f1 {
            () => {
                _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d)))
            };
        }
        // G(b, c, d) = (d & b) | (!d & c), as c ^ (d & (b ^ c)).
        macro_rules! f2 {
            () => {
                _mm_xor_si128(c, _mm_and_si128(d, _mm_xor_si128(b, c)))
            };
        }
        macro_rules! f3 {
            () => {
                _mm_xor_si128(b, _mm_xor_si128(c, d))
            };
        }
        // I(b, c, d) = c ^ (b | !d).
        macro_rules! f4 {
            () => {
                _mm_xor_si128(c, _mm_or_si128(b, _mm_xor_si128(d, ones)))
            };
        }

        // The four round groups share the same indexed-macro shape; the
        // first happens to use `i` as both message and round index.
        #[allow(clippy::needless_range_loop)]
        for i in 0..16 {
            round!(f1!(), i, i);
        }
        for i in 16..32 {
            round!(f2!(), (5 * i + 1) % 16, i);
        }
        for i in 32..48 {
            round!(f3!(), (3 * i + 5) % 16, i);
        }
        for i in 48..64 {
            round!(f4!(), (7 * i) % 16, i);
        }

        let mut lanes = [[0u32; 4]; 4];
        _mm_storeu_si128(lanes[0].as_mut_ptr().cast::<__m128i>(), a);
        _mm_storeu_si128(lanes[1].as_mut_ptr().cast::<__m128i>(), b);
        _mm_storeu_si128(lanes[2].as_mut_ptr().cast::<__m128i>(), c);
        _mm_storeu_si128(lanes[3].as_mut_ptr().cast::<__m128i>(), d);
        for (l, state) in states.iter_mut().enumerate() {
            for (word, lane) in state.iter_mut().zip(&lanes) {
                *word = word.wrapping_add(lane[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{md5, sha1, md5_lines4, sha1_lines4, Sha1};

    fn lines(seed: u8) -> [[u8; 64]; 4] {
        std::array::from_fn(|l| {
            std::array::from_fn(|i| (l * 64 + i) as u8 ^ seed ^ (i as u8).wrapping_mul(29))
        })
    }

    #[test]
    fn sha_ni_compress_matches_scalar_streaming() {
        if !super::sha_ni_available() {
            return;
        }
        // `Sha1::update`/`finalize` route every compression through the
        // SHA-NI block; long odd-boundary inputs exercise the chaining.
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 17 % 251) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(&data));
        assert_eq!(sha1(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn ssse3_four_lane_matches_scalar_kernel() {
        if !super::ssse3_available() {
            return;
        }
        for seed in [0x00, 0xA5, 0xFF] {
            let input = lines(seed);
            let mut simd_states = [crate::sha1::SHA1_INIT; 4];
            // SAFETY: ssse3_available confirmed the CPU features.
            unsafe {
                super::sha1_compress4_ssse3(
                    &mut simd_states,
                    [&input[0], &input[1], &input[2], &input[3]],
                );
                super::sha1_compress4_ssse3(&mut simd_states, [&crate::sha1::SHA1_LINE_PAD; 4]);
            }
            let expected = std::array::from_fn::<_, 4, _>(|l| sha1(&input[l]));
            for (l, digest) in expected.iter().enumerate() {
                let mut out = [0u8; 20];
                for (i, word) in simd_states[l].iter().enumerate() {
                    out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
                }
                assert_eq!(&crate::Sha1Digest(out), digest, "lane {l} seed {seed:#x}");
            }
        }
    }

    #[test]
    fn dispatched_lane_kernels_match_one_shot() {
        for seed in [0x11, 0x80, 0xE7] {
            let input = lines(seed);
            let sha_digests = sha1_lines4(&input);
            let md5_digests = md5_lines4(&input);
            for l in 0..4 {
                assert_eq!(sha_digests[l], sha1(&input[l]), "sha1 lane {l}");
                assert_eq!(md5_digests[l], md5(&input[l]), "md5 lane {l}");
            }
        }
    }
}

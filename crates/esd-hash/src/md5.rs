//! MD5 (RFC 1321), implemented from scratch.

use std::fmt;

/// Per-round shift amounts, shared with the AVX2 4-lane kernel.
pub(crate) const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Per-round additive constants (`floor(2^32 * abs(sin(i+1)))`), shared
/// with the AVX2 4-lane kernel.
pub(crate) const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// A 128-bit MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Md5Digest(pub [u8; 16]);

impl Md5Digest {
    /// Formats the digest as 32 lowercase hex characters.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first 8 bytes of the digest as a little-endian `u64`.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Md5Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Md5Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming MD5 hasher.
///
/// # Examples
///
/// ```
/// use esd_hash::Md5;
/// let mut h = Md5::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

impl Md5 {
    /// Creates a hasher in the standard initial state.
    #[must_use]
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("64-byte block");
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> Md5Digest {
        let length_bits = self.length_bits;
        self.push_byte(0x80);
        while self.buffered != 56 {
            self.push_byte(0);
        }
        let start = self.buffered;
        self.buffer[start..start + 8].copy_from_slice(&length_bits.to_le_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Md5Digest(out)
    }

    fn push_byte(&mut self, byte: u8) {
        self.buffer[self.buffered] = byte;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
    }

    /// The fast block compression: the 64-round loop is split into its four
    /// phases, removing the per-round `(f, g)` dispatch and letting each
    /// phase's message-word index progression be computed directly.
    /// Bit-exact with [`crate::reference::md5_compress`].
    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (word, chunk) in m.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        macro_rules! round {
            ($f:expr, $g:expr, $i:expr) => {{
                let f = $f.wrapping_add(a).wrapping_add(K[$i]).wrapping_add(m[$g]);
                a = d;
                d = c;
                c = b;
                b = b.wrapping_add(f.rotate_left(S[$i]));
            }};
        }

        for i in 0..16 {
            round!((b & c) | ((!b) & d), i, i);
        }
        for i in 16..32 {
            round!((d & b) | ((!d) & c), (5 * i + 1) % 16, i);
        }
        for i in 32..48 {
            round!(b ^ c ^ d, (3 * i + 5) % 16, i);
        }
        for i in 48..64 {
            round!(c ^ (b | !d), (7 * i) % 16, i);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Computes the MD5 digest of `data` in one shot.
#[must_use]
pub fn md5(data: &[u8]) -> Md5Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// The standard MD5 initial state, shared with the 4-lane kernel.
const MD5_INIT: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// The second compression block of every one-shot 64-byte message is a
/// constant: the `0x80` terminator, zeros, then the 512-bit message length
/// little-endian in the last eight bytes.
const MD5_LINE_PAD: [u8; 64] = {
    let mut block = [0u8; 64];
    block[0] = 0x80;
    block[57] = 0x02; // 512 = 0x0200, little-endian
    block
};

/// One MD5 compression over four independent states, dispatched to the
/// AVX2 vertical kernel where the host has it and the scalar interleaved
/// lanes otherwise — bit-exact either way. (Single-block MD5 has no
/// hardware path: each round depends on the previous, so only the 4-lane
/// shape vectorizes.)
fn md5_compress4(states: &mut [[u32; 4]; 4], blocks: [&[u8; 64]; 4]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_available() {
        // SAFETY: `avx2_available` confirmed the `avx2` CPU feature at
        // runtime before taking this path.
        unsafe { crate::simd::md5_compress4_avx2(states, blocks) };
        return;
    }
    md5_compress4_scalar(states, blocks);
}

/// One MD5 compression over four independent states in lockstep (see
/// the SHA-1 counterpart for the interleaving rationale).
fn md5_compress4_scalar(states: &mut [[u32; 4]; 4], blocks: [&[u8; 64]; 4]) {
    let mut m = [[0u32; 16]; 4];
    for (lane, block) in m.iter_mut().zip(blocks) {
        for (word, chunk) in lane.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
    }

    let mut a: [u32; 4] = std::array::from_fn(|l| states[l][0]);
    let mut b: [u32; 4] = std::array::from_fn(|l| states[l][1]);
    let mut c: [u32; 4] = std::array::from_fn(|l| states[l][2]);
    let mut d: [u32; 4] = std::array::from_fn(|l| states[l][3]);

    macro_rules! round4 {
        ($f:expr, $g:expr, $i:expr) => {{
            for l in 0..4 {
                let f: fn(u32, u32, u32) -> u32 = $f;
                let t = f(b[l], c[l], d[l])
                    .wrapping_add(a[l])
                    .wrapping_add(K[$i])
                    .wrapping_add(m[l][$g]);
                let next_b = b[l].wrapping_add(t.rotate_left(S[$i]));
                a[l] = d[l];
                d[l] = c[l];
                c[l] = b[l];
                b[l] = next_b;
            }
        }};
    }

    for i in 0..16 {
        round4!(|b, c, d| (b & c) | ((!b) & d), i, i);
    }
    for i in 16..32 {
        round4!(|b, c, d| (d & b) | ((!d) & c), (5 * i + 1) % 16, i);
    }
    for i in 32..48 {
        round4!(|b, c, d| b ^ c ^ d, (3 * i + 5) % 16, i);
    }
    for i in 48..64 {
        round4!(|b, c, d| c ^ (b | !d), (7 * i) % 16, i);
    }

    for l in 0..4 {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
    }
}

/// Hashes four independent 64-byte lines in lockstep — two interleaved
/// compressions (the data blocks, then the shared constant padding block) —
/// and returns the four digests. Bit-exact with [`md5`] on each line.
#[must_use]
pub fn md5_lines4(lines: &[[u8; 64]; 4]) -> [Md5Digest; 4] {
    let mut states = [MD5_INIT; 4];
    md5_compress4(&mut states, [&lines[0], &lines[1], &lines[2], &lines[3]]);
    md5_compress4(&mut states, [&MD5_LINE_PAD; 4]);
    std::array::from_fn(|l| {
        let mut out = [0u8; 16];
        for (i, word) in states[l].iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Md5Digest(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(md5(b"").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5(b"a").to_hex(), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5(b"abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(md5(b"message digest").to_hex(), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            md5(b"abcdefghijklmnopqrstuvwxyz").to_hex(),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            md5(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789").to_hex(),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            md5(b"12345678901234567890123456789012345678901234567890123456789012345678901234567890")
                .to_hex(),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..257).map(|i| (i * 3 % 256) as u8).collect();
        for split in [0usize, 1, 55, 63, 64, 65, 128, 257] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), md5(&data), "split {split}");
        }
    }

    #[test]
    fn digest_helpers() {
        let d = md5(b"x");
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(d.as_ref().len(), 16);
        assert_eq!(d.to_string(), d.to_hex());
        let _ = d.to_u64();
    }
}

//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! SHA-1 is cryptographically broken for adversarial collision resistance,
//! but the dedup baselines in the ESD paper use it purely as a content
//! fingerprint, where accidental collisions are what matters.

use std::fmt;

/// A 160-bit SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// Formats the digest as 40 lowercase hex characters.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first 8 bytes of the digest as a little-endian `u64`, convenient
    /// as a compact fingerprint key.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Sha1Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Sha1Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use esd_hash::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"a");
/// h.update(b"bc");
/// assert_eq!(h.finalize(), esd_hash::sha1(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha1 {
            state: SHA1_INIT,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("64-byte block");
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> Sha1Digest {
        let length_bits = self.length_bits;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buffered != 56 {
            self.update_zero_byte();
        }
        let block_start = self.buffered;
        self.buffer[block_start..block_start + 8].copy_from_slice(&length_bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffered] = 0x80;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffered] = 0;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
    }

    /// One block compression, dispatched to the fastest available backend:
    /// the SHA-NI rounds when the kernel backend allows SIMD and the host
    /// has the `sha` feature, otherwise the scalar phase-split loop — both
    /// bit-exact with [`crate::reference::sha1_compress`].
    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::sha_ni_available() {
            // SAFETY: `sha_ni_available` confirmed the `sha`+`ssse3`+`sse2`
            // CPU features at runtime before taking this path.
            unsafe { crate::simd::sha1_compress_ni(&mut self.state, block) };
            return;
        }
        self.compress_scalar(block);
    }

    /// The scalar block compression: the 80-round loop is split into its
    /// four phases (removing the per-round `(f, k)` dispatch) and the
    /// message schedule lives in a 16-word circular buffer computed on the
    /// fly (instead of a pre-expanded 80-word array). Bit-exact with
    /// [`crate::reference::sha1_compress`].
    fn compress_scalar(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 16];
        for (word, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        // w[i] for i >= 16 is (w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]) <<< 1;
        // modulo 16 those taps are (i+13), (i+8), (i+2) and i itself.
        macro_rules! schedule {
            ($i:expr) => {{
                let next = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = next;
                next
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let temp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = temp;
            }};
        }

        for &wi in &w {
            round!((b & c) | ((!b) & d), 0x5A82_7999, wi);
        }
        for i in 16..20 {
            let wi = schedule!(i);
            round!((b & c) | ((!b) & d), 0x5A82_7999, wi);
        }
        for i in 20..40 {
            let wi = schedule!(i);
            round!(b ^ c ^ d, 0x6ED9_EBA1, wi);
        }
        for i in 40..60 {
            let wi = schedule!(i);
            round!((b & c) | (b & d) | (c & d), 0x8F1B_BCDC, wi);
        }
        for i in 60..80 {
            let wi = schedule!(i);
            round!(b ^ c ^ d, 0xCA62_C1D6, wi);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Computes the SHA-1 digest of `data` in one shot.
#[must_use]
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// The standard SHA-1 initial state, shared with the 4-lane kernel.
pub(crate) const SHA1_INIT: [u32; 5] =
    [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

/// The second compression block of every one-shot 64-byte message is a
/// constant: the `0x80` terminator, zeros, then the 512-bit message length
/// big-endian in the last eight bytes.
pub(crate) const SHA1_LINE_PAD: [u8; 64] = {
    let mut block = [0u8; 64];
    block[0] = 0x80;
    block[62] = 0x02; // 512 = 0x0200, big-endian
    block
};

/// One SHA-1 compression over four independent states, dispatched to the
/// fastest available backend: four SHA-NI single-block compressions where
/// the host has them, the SSSE3 4-wide vertical kernel otherwise, and the
/// scalar interleaved lanes as the universal fallback. All bit-exact.
fn sha1_compress4(states: &mut [[u32; 5]; 4], blocks: [&[u8; 64]; 4]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::sha_ni_available() {
            for (state, block) in states.iter_mut().zip(blocks) {
                // SAFETY: `sha_ni_available` confirmed the `sha`+`ssse3`+
                // `sse2` CPU features at runtime before taking this path.
                unsafe { crate::simd::sha1_compress_ni(state, block) };
            }
            return;
        }
        if crate::simd::ssse3_available() {
            // SAFETY: `ssse3_available` confirmed the `ssse3`+`sse2` CPU
            // features at runtime before taking this path.
            unsafe { crate::simd::sha1_compress4_ssse3(states, blocks) };
            return;
        }
    }
    sha1_compress4_scalar(states, blocks);
}

/// One SHA-1 compression over four independent states in lockstep: the four
/// message schedules and round computations are interleaved so each round's
/// four lane operations are adjacent — the shape the compiler auto-vectorizes
/// and that keeps all four working sets in registers.
fn sha1_compress4_scalar(states: &mut [[u32; 5]; 4], blocks: [&[u8; 64]; 4]) {
    let mut w = [[0u32; 16]; 4];
    for (lane, block) in w.iter_mut().zip(blocks) {
        for (word, chunk) in lane.iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
    }

    let mut a: [u32; 4] = std::array::from_fn(|l| states[l][0]);
    let mut b: [u32; 4] = std::array::from_fn(|l| states[l][1]);
    let mut c: [u32; 4] = std::array::from_fn(|l| states[l][2]);
    let mut d: [u32; 4] = std::array::from_fn(|l| states[l][3]);
    let mut e: [u32; 4] = std::array::from_fn(|l| states[l][4]);

    macro_rules! schedule4 {
        ($i:expr) => {{
            let mut next = [0u32; 4];
            for l in 0..4 {
                let n = (w[l][($i + 13) & 15]
                    ^ w[l][($i + 8) & 15]
                    ^ w[l][($i + 2) & 15]
                    ^ w[l][$i & 15])
                    .rotate_left(1);
                w[l][$i & 15] = n;
                next[l] = n;
            }
            next
        }};
    }
    macro_rules! round4 {
        ($f:expr, $k:expr, $wi:expr) => {{
            for l in 0..4 {
                let f: fn(u32, u32, u32) -> u32 = $f;
                let temp = a[l]
                    .rotate_left(5)
                    .wrapping_add(f(b[l], c[l], d[l]))
                    .wrapping_add(e[l])
                    .wrapping_add($k)
                    .wrapping_add($wi[l]);
                e[l] = d[l];
                d[l] = c[l];
                c[l] = b[l].rotate_left(30);
                b[l] = a[l];
                a[l] = temp;
            }
        }};
    }

    // `i` walks the message-word axis; iterating `&w` would walk lanes,
    // the wrong dimension — hence the allow.
    #[allow(clippy::needless_range_loop)]
    for i in 0..16 {
        let wi: [u32; 4] = std::array::from_fn(|l| w[l][i]);
        round4!(|b, c, d| (b & c) | ((!b) & d), 0x5A82_7999, wi);
    }
    for i in 16..20 {
        let wi = schedule4!(i);
        round4!(|b, c, d| (b & c) | ((!b) & d), 0x5A82_7999, wi);
    }
    for i in 20..40 {
        let wi = schedule4!(i);
        round4!(|b, c, d| b ^ c ^ d, 0x6ED9_EBA1, wi);
    }
    for i in 40..60 {
        let wi = schedule4!(i);
        round4!(|b, c, d| (b & c) | (b & d) | (c & d), 0x8F1B_BCDC, wi);
    }
    for i in 60..80 {
        let wi = schedule4!(i);
        round4!(|b, c, d| b ^ c ^ d, 0xCA62_C1D6, wi);
    }

    for l in 0..4 {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
    }
}

/// Hashes four independent 64-byte lines in lockstep — two interleaved
/// compressions (the data blocks, then the shared constant padding block) —
/// and returns the four digests. Bit-exact with [`sha1`] on each line.
#[must_use]
pub fn sha1_lines4(lines: &[[u8; 64]; 4]) -> [Sha1Digest; 4] {
    let mut states = [SHA1_INIT; 4];
    sha1_compress4(&mut states, [&lines[0], &lines[1], &lines[2], &lines[3]]);
    sha1_compress4(&mut states, [&SHA1_LINE_PAD; 4]);
    std::array::from_fn(|l| {
        let mut out = [0u8; 20];
        for (i, word) in states[l].iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(sha1(b"").to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(h.finalize().to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split {split}");
        }
    }

    #[test]
    fn four_lane_matches_scalar() {
        let lines: [[u8; 64]; 4] = std::array::from_fn(|l| {
            std::array::from_fn(|i| (l * 64 + i) as u8 ^ 0xA5)
        });
        let digests = sha1_lines4(&lines);
        for (line, digest) in lines.iter().zip(digests) {
            assert_eq!(digest, sha1(line));
        }
    }

    #[test]
    fn digest_helpers() {
        let d = sha1(b"abc");
        assert_eq!(d.to_hex().len(), 40);
        assert_eq!(d.as_ref().len(), 20);
        assert_eq!(d.to_u64(), u64::from_le_bytes(d.0[..8].try_into().unwrap()));
        assert_eq!(d.to_string(), d.to_hex());
    }
}

//! Runtime kernel-backend selection for the ESD hot kernels.
//!
//! The compute kernels (AES-128, SHA-1, MD5, Hamming(72,64)) each keep a
//! portable scalar implementation as the reference, plus `std::arch`
//! x86-64 implementations (AES-NI, SHA-NI, AVX2/SSSE3) that are bit-exact
//! with it. This crate owns the single process-wide answer to "which one
//! runs": a [`KernelBackend`] selector resolved from, in priority order,
//! an explicit [`set_backend`] call (CLI `--kernels` /
//! `RunOptions::kernels`), the `ESD_KERNEL` environment variable, or
//! `auto`.
//!
//! Dispatch never changes results — every SIMD backend is proven
//! byte-identical to the scalar lanes — so the selector only moves
//! wall-clock time. The leaf crates consult [`simd_allowed`] plus the
//! cached [`cpu_features`] on each kernel entry (two relaxed atomic
//! loads) and fall through to scalar whenever the backend says so or the
//! host lacks the instruction set.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which family of kernel implementations the process should run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Force the portable scalar reference kernels everywhere.
    Scalar,
    /// Prefer the hardware SIMD kernels; any kernel whose instruction-set
    /// extension is missing on this host silently falls back to scalar.
    Simd,
    /// Same dispatch as [`KernelBackend::Simd`]: use hardware where
    /// detected, scalar otherwise. This is the default.
    #[default]
    Auto,
}

impl KernelBackend {
    /// Every backend, for sweeps and tests.
    pub const ALL: [KernelBackend; 3] =
        [KernelBackend::Scalar, KernelBackend::Simd, KernelBackend::Auto];

    /// Canonical lowercase name, as accepted by `--kernels`/`ESD_KERNEL`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
            KernelBackend::Auto => "auto",
        }
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelBackend::Scalar),
            "simd" => Ok(KernelBackend::Simd),
            "auto" => Ok(KernelBackend::Auto),
            other => Err(format!(
                "unknown kernel backend {other:?} (expected scalar, simd, or auto)"
            )),
        }
    }
}

/// The instruction-set extensions the SIMD backends care about, as
/// detected on this host at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// AES-NI (`aesenc`/`aesenclast`) — AES-128 block encryption.
    pub aes: bool,
    /// SHA extensions (`sha1rnds4`/`sha1msg1`/`sha1msg2`) — SHA-1 rounds.
    pub sha: bool,
    /// AVX2 — 4-lane vertical MD5 and wide message schedules.
    pub avx2: bool,
    /// SSSE3 (`pshufb`) — nibble-LUT parity for the Hamming encoder and
    /// the 4-wide SHA-1 fallback.
    pub ssse3: bool,
}

impl CpuFeatures {
    /// No hardware support at all — the non-x86-64 answer and the scalar
    /// baseline for tests.
    pub const NONE: CpuFeatures =
        CpuFeatures { aes: false, sha: false, avx2: false, ssse3: false };
}

#[cfg(target_arch = "x86_64")]
fn detect_features() -> CpuFeatures {
    CpuFeatures {
        aes: std::arch::is_x86_feature_detected!("aes")
            && std::arch::is_x86_feature_detected!("sse2"),
        sha: std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse2")
            && std::arch::is_x86_feature_detected!("ssse3"),
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        ssse3: std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse2"),
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_features() -> CpuFeatures {
    CpuFeatures::NONE
}

/// The cached host CPU features relevant to kernel dispatch.
pub fn cpu_features() -> CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    *FEATURES.get_or_init(detect_features)
}

// The process-wide backend: 0 = not yet resolved, else discriminant + 1.
static BACKEND: AtomicU8 = AtomicU8::new(0);

const SCALAR: u8 = 1;
const SIMD: u8 = 2;
const AUTO: u8 = 3;

fn encode(backend: KernelBackend) -> u8 {
    match backend {
        KernelBackend::Scalar => SCALAR,
        KernelBackend::Simd => SIMD,
        KernelBackend::Auto => AUTO,
    }
}

fn decode(raw: u8) -> KernelBackend {
    match raw {
        SCALAR => KernelBackend::Scalar,
        SIMD => KernelBackend::Simd,
        _ => KernelBackend::Auto,
    }
}

/// Parses `ESD_KERNEL` the way every other `ESD_*` knob is parsed: unset
/// means the default (`auto`), a malformed value warns once on stderr and
/// falls back to the default rather than aborting the run.
#[must_use]
pub fn backend_from_env() -> KernelBackend {
    match std::env::var("ESD_KERNEL") {
        Ok(raw) => match raw.parse() {
            Ok(backend) => backend,
            Err(err) => {
                eprintln!("warning: ignoring ESD_KERNEL={raw:?}: {err}; using auto");
                KernelBackend::Auto
            }
        },
        Err(_) => KernelBackend::Auto,
    }
}

/// Selects the process-wide backend, overriding `ESD_KERNEL` and any
/// previous selection. Called by the run path before workers spawn;
/// benchmarks and tests use it to force a backend mid-process.
pub fn set_backend(backend: KernelBackend) {
    BACKEND.store(encode(backend), Ordering::Relaxed);
}

/// The currently selected backend, resolving `ESD_KERNEL` on first use.
#[must_use]
pub fn backend() -> KernelBackend {
    let raw = BACKEND.load(Ordering::Relaxed);
    if raw != 0 {
        return decode(raw);
    }
    let resolved = backend_from_env();
    // Racing first calls may both read the env; they resolve identically,
    // so last-store-wins is benign.
    BACKEND.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Whether the SIMD kernels may run. Kernels still check the specific
/// [`cpu_features`] bit they need; `false` forces scalar everywhere.
#[inline]
#[must_use]
pub fn simd_allowed() -> bool {
    backend() != KernelBackend::Scalar
}

/// One line per kernel naming the implementation the current backend and
/// host features select — printed to stderr by the CLI so runs record
/// which code actually executed.
#[must_use]
pub fn dispatch_report() -> String {
    let features = cpu_features();
    let simd = simd_allowed();
    let pick = |available: bool, hw: &'static str| if simd && available { hw } else { "scalar" };
    let sha1 = if simd && features.sha {
        "sha-ni"
    } else {
        // The 4-wide message-schedule fallback only needs pshufb.
        pick(features.ssse3, "ssse3")
    };
    format!(
        "kernel dispatch ({}): aes128={} sha1={} md5={} hamming={}",
        backend(),
        pick(features.aes, "aes-ni"),
        sha1,
        pick(features.avx2, "avx2"),
        pick(features.ssse3, "ssse3"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for backend in KernelBackend::ALL {
            assert_eq!(backend.name().parse::<KernelBackend>().unwrap(), backend);
        }
        assert_eq!(" SIMD ".parse::<KernelBackend>().unwrap(), KernelBackend::Simd);
        assert!("bogus".parse::<KernelBackend>().is_err());
    }

    #[test]
    fn default_backend_is_auto() {
        assert_eq!(KernelBackend::default(), KernelBackend::Auto);
    }

    #[test]
    fn set_backend_controls_simd_allowed() {
        set_backend(KernelBackend::Scalar);
        assert!(!simd_allowed());
        assert_eq!(backend(), KernelBackend::Scalar);
        assert!(dispatch_report().contains("aes128=scalar"));

        set_backend(KernelBackend::Simd);
        assert!(simd_allowed());

        set_backend(KernelBackend::Auto);
        assert!(simd_allowed());
        assert!(dispatch_report().starts_with("kernel dispatch (auto):"));
    }

    #[test]
    fn features_are_cached_and_consistent() {
        assert_eq!(cpu_features(), cpu_features());
    }
}

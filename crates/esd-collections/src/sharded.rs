//! A lock-striped `u64 → V` map for cross-shard lookups.
//!
//! The sharded replay engine keeps one global *dedup directory* (fingerprint
//! → owning shard + content) that every shard probes on its write path but
//! that is only mutated at epoch barriers. A single `Mutex<U64Map>` would
//! serialize those probes; [`ShardedU64Map`] splits the key space over a
//! power-of-two number of independently locked stripes so concurrent readers
//! of different stripes never contend, and readers of the same stripe only
//! share a reader-writer lock in read mode.
//!
//! Determinism: stripe selection depends only on the key (same multiply-xor
//! hash as [`U64Map`](crate::U64Map), no per-process seeding), and the map
//! exposes copy-out reads rather than references, so the data structure
//! itself never makes results depend on thread interleaving — only on the
//! order of `insert` calls, which the replay engine serializes at barriers.

use std::sync::RwLock;

use crate::fx::hash_u64;
use crate::map::U64Map;

/// A concurrent `u64 → V` map striped over independently locked segments.
///
/// Reads (`get`, `contains_key`) take one stripe's lock in shared mode and
/// copy the value out; writes (`insert`) take it exclusively. The stripe for
/// a key is a pure function of the key, so placement is deterministic.
///
/// # Examples
///
/// ```
/// use esd_collections::ShardedU64Map;
/// let map: ShardedU64Map<u64> = ShardedU64Map::new(8);
/// assert_eq!(map.insert(0x40, 7), None);
/// assert_eq!(map.get(0x40), Some(7));
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedU64Map<V> {
    stripes: Vec<RwLock<U64Map<V>>>,
    mask: usize,
}

impl<V> ShardedU64Map<V> {
    /// Creates a map with at least `stripes` segments (rounded up to a
    /// power of two, minimum 1).
    #[must_use]
    pub fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        ShardedU64Map {
            stripes: (0..n).map(|_| RwLock::new(U64Map::new())).collect(),
            mask: n - 1,
        }
    }

    /// Number of stripes (always a power of two).
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index a key maps to. Uses the *high* hash bits so stripe
    /// choice stays independent of the slot index each stripe's `U64Map`
    /// derives from the low bits.
    #[inline]
    fn stripe_of(&self, key: u64) -> usize {
        (hash_u64(key) >> 32) as usize & self.mask
    }

    /// Total entries across all stripes.
    ///
    /// # Panics
    ///
    /// Panics if a stripe lock was poisoned by a panicking writer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().expect("stripe lock poisoned").len())
            .sum()
    }

    /// Whether no stripe holds any entry.
    ///
    /// # Panics
    ///
    /// Panics if a stripe lock was poisoned by a panicking writer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stripes
            .iter()
            .all(|s| s.read().expect("stripe lock poisoned").is_empty())
    }

    /// Whether `key` is present.
    ///
    /// # Panics
    ///
    /// Panics if the stripe lock was poisoned by a panicking writer.
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.stripes[self.stripe_of(key)]
            .read()
            .expect("stripe lock poisoned")
            .contains_key(key)
    }

    /// Inserts `key → value`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if the stripe lock was poisoned by a panicking writer.
    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        self.stripes[self.stripe_of(key)]
            .write()
            .expect("stripe lock poisoned")
            .insert(key, value)
    }

    /// Removes every entry from every stripe.
    ///
    /// # Panics
    ///
    /// Panics if a stripe lock was poisoned by a panicking writer.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.write().expect("stripe lock poisoned").clear();
        }
    }
}

impl<V: Clone> ShardedU64Map<V> {
    /// A copy of the value for `key`. Copy-out (rather than handing back a
    /// reference) keeps the lock hold time to one probe.
    ///
    /// # Panics
    ///
    /// Panics if the stripe lock was poisoned by a panicking writer.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<V> {
        self.stripes[self.stripe_of(key)]
            .read()
            .expect("stripe lock poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts `key → value` only if absent, returning whether it was
    /// inserted. This is the directory's first-writer-wins primitive: the
    /// check and the insert happen under one exclusive stripe lock.
    ///
    /// # Panics
    ///
    /// Panics if the stripe lock was poisoned by a panicking writer.
    pub fn insert_if_absent(&self, key: u64, value: V) -> bool {
        let mut stripe = self.stripes[self.stripe_of(key)]
            .write()
            .expect("stripe lock poisoned");
        if stripe.contains_key(key) {
            false
        } else {
            stripe.insert(key, value);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip_across_stripes() {
        let map: ShardedU64Map<u64> = ShardedU64Map::new(4);
        for key in 0..1000u64 {
            assert_eq!(map.insert(key * 64, key), None);
        }
        assert_eq!(map.len(), 1000);
        for key in 0..1000u64 {
            assert_eq!(map.get(key * 64), Some(key), "key {key}");
        }
        assert!(map.contains_key(0));
        assert!(!map.contains_key(1));
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(ShardedU64Map::<u64>::new(0).stripe_count(), 1);
        assert_eq!(ShardedU64Map::<u64>::new(3).stripe_count(), 4);
        assert_eq!(ShardedU64Map::<u64>::new(8).stripe_count(), 8);
    }

    #[test]
    fn insert_if_absent_is_first_writer_wins() {
        let map: ShardedU64Map<u64> = ShardedU64Map::new(2);
        assert!(map.insert_if_absent(7, 1));
        assert!(!map.insert_if_absent(7, 2));
        assert_eq!(map.get(7), Some(1), "first value survives");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn clear_empties_every_stripe() {
        let map: ShardedU64Map<u64> = ShardedU64Map::new(4);
        for key in 0..100 {
            map.insert(key, key);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(5), None);
    }

    #[test]
    fn concurrent_readers_see_published_entries() {
        use std::sync::Arc;
        let map: Arc<ShardedU64Map<u64>> = Arc::new(ShardedU64Map::new(8));
        for key in 0..512u64 {
            map.insert(key, key * 2);
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = Arc::clone(&map);
                scope.spawn(move || {
                    for key in 0..512u64 {
                        assert_eq!(map.get(key), Some(key * 2));
                    }
                });
            }
        });
    }

    #[test]
    fn sharded_map_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedU64Map<u64>>();
    }
}

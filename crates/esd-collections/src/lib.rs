#![warn(missing_docs)]

//! Flat, cache-friendly collections for the replay hot path.
//!
//! The simulator's metadata structures (AMT, fingerprint stores, refcounts,
//! predictor counters, encryption counters, the verify shadow map) are all
//! keyed by 64-bit addresses or fingerprints and live on the critical path
//! of every simulated access. `std::collections::HashMap` spends most of a
//! probe SipHash-ing the key; this crate provides the two pieces that
//! replace it:
//!
//! * [`fx`] — an FxHash-style multiply-xor finisher for `u64` keys (and a
//!   [`std::hash::Hasher`] wrapper for generic keys), written in-repo so the
//!   workspace stays dependency-free;
//! * [`U64Map`] — an open-addressed `u64 → V` table with linear probing and
//!   tombstone-free (backward-shift) removal, so long-lived tables never
//!   degrade from deleted-entry litter;
//! * [`ShardedU64Map`] — a lock-striped concurrent variant for state shared
//!   across replay shards (the cross-shard dedup directory), where probes
//!   from different threads must not contend on one global lock.
//!
//! All are deterministic: no per-process hash seeding, so replay results
//! and iteration-free algorithms built on them reproduce exactly across
//! runs and thread counts.

pub mod fx;
mod map;
mod sharded;

pub use fx::{FxBuildHasher, FxHasher};
pub use map::U64Map;
pub use sharded::ShardedU64Map;

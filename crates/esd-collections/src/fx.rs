//! An FxHash-style multiply-xor hasher, written in-repo.
//!
//! The keys on the simulator's hot paths are line addresses and 64-bit
//! fingerprints — already well-mixed or trivially mixable — so the DoS
//! resistance `std`'s SipHash buys is pure overhead here. This module
//! provides the classic multiply-xor finisher used by rustc's FxHashMap
//! (one multiply by a 64-bit odd constant per word, one xor-rotate), plus
//! a [`std::hash::Hasher`]/[`std::hash::BuildHasher`] pair so generic
//! `K: Hash` containers can use it.
//!
//! Hashing is deterministic (no per-process seed): identical inputs hash
//! identically across runs, which the replay-determinism tests rely on.

use std::hash::{BuildHasher, Hasher};

/// 2^64 / phi, the multiplicative constant Fx-style hashers use: odd, with
/// well-distributed bits, so multiplication diffuses low-entropy keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Mixes one 64-bit word into a running hash: rotate, xor, multiply.
#[inline]
#[must_use]
pub fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hashes a single `u64` key (the common case on the simulator's hot
/// paths) in two multiplies' worth of work.
///
/// The extra xor-shift finisher matters: open-addressed tables take the
/// *high* bits' entropy down into the index mask, and line addresses are
/// 64-aligned (six zero low bits).
///
/// # Examples
///
/// ```
/// use esd_collections::fx::hash_u64;
/// assert_ne!(hash_u64(0x40), hash_u64(0x80));
/// assert_eq!(hash_u64(7), hash_u64(7)); // deterministic, unseeded
/// ```
#[inline]
#[must_use]
pub fn hash_u64(key: u64) -> u64 {
    let h = mix(0, key);
    h ^ (h >> 32)
}

/// A [`Hasher`] over the multiply-xor mixer, for generic `K: Hash` keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = mix(self.hash, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = mix(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.hash = mix(self.hash, value);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.hash = mix(self.hash, u64::from(value));
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.hash = mix(self.hash, u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.hash = mix(self.hash, value as u64);
    }
}

/// A [`BuildHasher`] producing [`FxHasher`]s, for use as a `HashMap`/
/// custom-container hasher parameter.
///
/// # Examples
///
/// ```
/// use std::hash::BuildHasher;
/// use esd_collections::FxBuildHasher;
/// let build = FxBuildHasher;
/// assert_eq!(build.hash_one(42u64), build.hash_one(42u64));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn u64_fast_path_matches_hasher() {
        // The specialized hash_u64 must agree with the generic Hasher so a
        // key hashed either way lands in the same table slot.
        for key in [0u64, 1, 0x40, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(hash_u64(key), FxBuildHasher.hash_one(key));
        }
    }

    #[test]
    fn aligned_addresses_spread_in_low_bits() {
        // Line addresses are 64-aligned; their hashes must still differ in
        // the low bits an index mask keeps.
        let mut low = std::collections::HashSet::new();
        for i in 0..1024u64 {
            low.insert(hash_u64(i * 64) & 0x3FF);
        }
        assert!(low.len() > 512, "only {} distinct low-10-bit values", low.len());
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths zero-pad differently only through chunking; the
        // point is simply that both produce stable, nonzero hashes.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }
}

//! An open-addressed `u64 → V` table with linear probing and
//! tombstone-free removal.

use crate::fx::hash_u64;

/// Minimum slot-array size (a power of two).
const MIN_SLOTS: usize = 8;

/// An open-addressed hash map from `u64` keys to `V` values.
///
/// Designed for the simulator's metadata hot paths: one multiply-xor hash,
/// a linear probe over a contiguous slot array, and **backward-shift
/// deletion** instead of tombstones, so long-lived tables (the AMT and the
/// allocator's refcounts live for an entire replay) never accumulate
/// deleted-entry litter that lengthens probes.
///
/// The table resizes at 7/8 occupancy and never shrinks. Iteration order is
/// unspecified but deterministic for a given insertion/removal history
/// (hashing is unseeded), which the replay-determinism tests rely on.
///
/// # Examples
///
/// ```
/// use esd_collections::U64Map;
/// let mut map: U64Map<u64> = U64Map::new();
/// map.insert(0x40, 7);
/// assert_eq!(map.get(0x40), Some(&7));
/// assert_eq!(map.insert(0x40, 8), Some(7));
/// assert_eq!(map.remove(0x40), Some(8));
/// assert!(map.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct U64Map<V> {
    slots: Vec<Option<(u64, V)>>,
    mask: usize,
    len: usize,
}

impl<V> Default for U64Map<V> {
    fn default() -> Self {
        U64Map::new()
    }
}

impl<V> U64Map<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        U64Map {
            slots: (0..MIN_SLOTS).map(|_| None).collect(),
            mask: MIN_SLOTS - 1,
            len: 0,
        }
    }

    /// Creates a map pre-sized to hold `capacity` entries without resizing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = slots_for(capacity);
        U64Map {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    #[inline]
    fn ideal(&self, key: u64) -> usize {
        hash_u64(key) as usize & self.mask
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.ideal(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// A shared reference to the value for `key`.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.slots[i].as_ref().unwrap().1)
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    #[must_use]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.slots[i].as_mut().unwrap().1)
    }

    /// Whether `key` is present.
    #[inline]
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Resize *before* probing so the insertion slot stays valid.
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.ideal(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// A mutable reference to the value for `key`, inserting
    /// `default(key)` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, default());
        }
        let i = self.find(key).expect("just inserted");
        &mut self.slots[i].as_mut().unwrap().1
    }

    /// Removes `key`, returning its value. Uses backward-shift deletion:
    /// the probe chain after the hole is compacted, so no tombstone is
    /// left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot is occupied");
        self.len -= 1;
        // Backward shift: walk the cluster after the hole; any entry whose
        // ideal slot lies cyclically at or before the hole moves into it.
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let Some((k, _)) = &self.slots[i] else { break };
            let ideal = self.ideal(*k);
            // Distance from the entry's ideal slot to where it sits now vs
            // to the hole; moving is safe iff the hole is on its probe path.
            if (i.wrapping_sub(ideal) & self.mask) >= (i.wrapping_sub(hole) & self.mask) {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
        Some(value)
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates over `(key, &mut value)` pairs in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|slot| slot.as_mut().map(|(k, v)| (*k, v)))
    }

    /// Iterates over the values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates over the keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    fn grow(&mut self) {
        let new_slots = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_slots).map(|_| None).collect(),
        );
        self.mask = new_slots - 1;
        for slot in old {
            if let Some((key, _)) = slot {
                // Re-probe into the doubled table; no occupancy check
                // needed (the new table is strictly larger).
                let mut i = self.ideal(key);
                while self.slots[i].is_some() {
                    i = (i + 1) & self.mask;
                }
                self.slots[i] = slot;
            }
        }
    }
}

/// Slot count (power of two) keeping `capacity` entries under 7/8 load.
fn slots_for(capacity: usize) -> usize {
    let needed = capacity.saturating_mul(8).div_ceil(7).max(MIN_SLOTS);
    needed.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut map = U64Map::new();
        assert_eq!(map.insert(1, "a"), None);
        assert_eq!(map.insert(2, "b"), None);
        assert_eq!(map.insert(1, "c"), Some("a"));
        assert_eq!(map.get(1), Some(&"c"));
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove(1), Some("c"));
        assert_eq!(map.remove(1), None);
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(2));
        assert!(!map.contains_key(1));
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        // Address 0 is a real physical line; the empty-slot encoding must
        // not confuse it with vacancy.
        let mut map = U64Map::new();
        map.insert(0, 99u64);
        assert_eq!(map.get(0), Some(&99));
        assert_eq!(map.remove(0), Some(99));
        assert!(map.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut map = U64Map::with_capacity(4);
        for i in 0..10_000u64 {
            map.insert(i * 64, i);
        }
        assert_eq!(map.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(map.get(i * 64), Some(&i), "key {i} lost in growth");
        }
    }

    #[test]
    fn with_capacity_avoids_resizing() {
        let map: U64Map<u64> = U64Map::with_capacity(1000);
        assert!(map.slots.len() >= 1000 * 8 / 7);
        assert!(map.slots.len().is_power_of_two());
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut map = U64Map::new();
        *map.get_or_insert_with(5, || 10u64) += 1;
        *map.get_or_insert_with(5, || 999) += 1;
        assert_eq!(map.get(5), Some(&12));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn backward_shift_preserves_probe_chains() {
        // Build dense clusters, delete from their middles, and check every
        // survivor is still reachable — the failure mode of naive deletion.
        let mut map = U64Map::new();
        let mut model = HashMap::new();
        // xorshift so keys are arbitrary but reproducible.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut keys = Vec::new();
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 1_024; // small key space forces collisions
            keys.push(key);
            map.insert(key, x);
            model.insert(key, x);
        }
        for (i, key) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(map.remove(*key), model.remove(key), "removing {key}");
            }
        }
        assert_eq!(map.len(), model.len());
        for (key, value) in &model {
            assert_eq!(map.get(*key), Some(value), "key {key} unreachable");
        }
        for (key, value) in map.iter() {
            assert_eq!(model.get(&key), Some(value));
        }
    }

    #[test]
    fn clear_retains_allocation() {
        let mut map = U64Map::new();
        for i in 0..100u64 {
            map.insert(i, i);
        }
        let slots = map.slots.len();
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.slots.len(), slots);
        map.insert(7, 7);
        assert_eq!(map.get(7), Some(&7));
    }

    #[test]
    fn iterators_cover_all_entries() {
        let mut map = U64Map::new();
        for i in 0..50u64 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.keys().count(), 50);
        assert_eq!(map.values().sum::<u64>(), (0..50u64).map(|i| i * 2).sum());
        for (_, v) in map.iter_mut() {
            *v += 1;
        }
        assert_eq!(map.get(0), Some(&1));
    }
}

#![warn(missing_docs)]

//! Dependency-free observability for the ESD simulator stack.
//!
//! Three pieces, all designed to cost nothing when disabled:
//!
//! * a [`Registry`] of named counters, gauges and log-bucketed latency
//!   histograms (reusing [`esd_sim::LatencyHistogram`]) with JSON export;
//! * a bounded ring-buffer [`Tracer`] whose events export as Chrome
//!   trace-event JSON, loadable in Perfetto or `chrome://tracing`;
//! * the [`Obs`] facade the simulator layers call: every method is a
//!   single-branch no-op when observability is off, so the instrumented
//!   hot paths keep their throughput.
//!
//! [`EpochSnapshot`] carries the runner's periodic time-series samples
//! (IPC, dedup rate, cache hit rate, queue occupancy, energy).
//!
//! # Examples
//!
//! ```
//! use esd_obs::Obs;
//! use esd_sim::Ps;
//!
//! let mut obs = Obs::enabled(1024);
//! obs.span("write", "efit_probe", Ps::ZERO, Ps::from_ns(2));
//! obs.instant("ecc", "ecc_corrected", Ps::from_ns(80));
//! obs.counter_sample("occupancy", "write_buffer_depth", Ps::from_ns(100), 3.0);
//! let json = obs.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(obs.metrics_json().contains("efit_probe"));
//! ```

mod metrics;
mod trace;

pub use metrics::{histogram_json, Registry};
pub use trace::{EventKind, TraceEvent, Tracer};

use esd_sim::Ps;

/// Default ring-buffer capacity used when tracing is enabled without an
/// explicit size: enough for the full write path of tens of thousands of
/// accesses without unbounded memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One point of the runner's epoch time-series: deltas and instantaneous
/// occupancies measured over `epoch_interval` accesses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochSnapshot {
    /// Epoch index, starting at zero.
    pub index: u64,
    /// One past the last trace access covered by this epoch.
    pub end_access: u64,
    /// Simulated time at the epoch boundary.
    pub end_time: Ps,
    /// Instructions per cycle achieved within this epoch alone.
    pub ipc: f64,
    /// Fraction of this epoch's writes eliminated by deduplication.
    pub dedup_rate: f64,
    /// Fingerprint-structure (EFIT / fingerprint cache) hit rate within
    /// this epoch; zero for schemes without one.
    pub fingerprint_hit_rate: f64,
    /// Write-buffer slots still occupied at the epoch boundary.
    pub write_buffer_depth: u64,
    /// PCM banks still busy at the epoch boundary.
    pub busy_banks: u64,
    /// Energy (device + compute) spent within this epoch, in picojoules.
    pub energy_pj: u64,
}

impl EpochSnapshot {
    /// Renders one epoch as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\":{},\"end_access\":{},\"end_time_ns\":{},\"ipc\":{},\
             \"dedup_rate\":{},\"fingerprint_hit_rate\":{},\
             \"write_buffer_depth\":{},\"busy_banks\":{},\"energy_pj\":{}}}",
            self.index,
            self.end_access,
            metrics::json_f64(self.end_time.as_ns_f64()),
            metrics::json_f64(self.ipc),
            metrics::json_f64(self.dedup_rate),
            metrics::json_f64(self.fingerprint_hit_rate),
            self.write_buffer_depth,
            self.busy_banks,
            self.energy_pj,
        )
    }
}

/// Renders an epoch series as a JSON array.
#[must_use]
pub fn epochs_to_json(epochs: &[EpochSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, e) in epochs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json());
    }
    out.push(']');
    out
}

/// The observability facade the simulator layers hold.
///
/// Constructed disabled by default; every recording method early-returns on
/// a single predictable branch in that state, so instrumented hot paths
/// compile to (almost) the uninstrumented code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Obs {
    enabled: bool,
    tracer: Tracer,
    registry: Registry,
}

impl Obs {
    /// A disabled sink: all recording methods are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// An enabled collector with a bounded trace ring buffer; a zero
    /// `trace_capacity` selects [`DEFAULT_TRACE_CAPACITY`].
    #[must_use]
    pub fn enabled(trace_capacity: usize) -> Self {
        let capacity = if trace_capacity == 0 {
            DEFAULT_TRACE_CAPACITY
        } else {
            trace_capacity
        };
        Obs {
            enabled: true,
            tracer: Tracer::with_capacity(capacity),
            registry: Registry::new(),
        }
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a completed span (`start..end`) as a trace event and a
    /// latency-histogram sample under `name`.
    #[inline]
    pub fn span(&mut self, cat: &'static str, name: &'static str, start: Ps, end: Ps) {
        if !self.enabled {
            return;
        }
        self.tracer.push_span(cat, name, start, end);
        self.registry
            .histogram_record(name, end.saturating_sub(start));
    }

    /// Records an instantaneous event and bumps the counter of the same
    /// name.
    #[inline]
    pub fn instant(&mut self, cat: &'static str, name: &'static str, ts: Ps) {
        if !self.enabled {
            return;
        }
        self.tracer.push_instant(cat, name, ts);
        self.registry.counter_add(name, 1);
    }

    /// Records a counter-track sample (Perfetto draws these as occupancy
    /// graphs) and sets the gauge of the same name.
    #[inline]
    pub fn counter_sample(&mut self, cat: &'static str, name: &'static str, ts: Ps, value: f64) {
        if !self.enabled {
            return;
        }
        self.tracer.push_counter(cat, name, ts, value);
        self.registry.gauge_set(name, value);
    }

    /// Adds to a named counter without emitting a trace event.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        self.registry.counter_add(name, n);
    }

    /// The trace ring buffer.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the trace ring buffer, for merging per-shard
    /// buffers into one timeline.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the metrics registry, for merging per-shard
    /// registries.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Exports the trace buffer as Chrome trace-event JSON (the Perfetto /
    /// `chrome://tracing` interchange format).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        self.tracer.to_chrome_json()
    }

    /// Exports the metrics registry as JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.registry.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let mut obs = Obs::disabled();
        obs.span("write", "efit_probe", Ps::ZERO, Ps::from_ns(2));
        obs.instant("ecc", "ecc_corrected", Ps::ZERO);
        obs.counter_sample("occupancy", "banks", Ps::ZERO, 1.0);
        obs.counter_add("writes", 1);
        assert!(!obs.is_enabled());
        assert_eq!(obs.tracer().len(), 0);
        assert!(obs.registry().is_empty());
    }

    #[test]
    fn enabled_obs_records_spans_and_histograms() {
        let mut obs = Obs::enabled(16);
        obs.span("write", "device_write", Ps::from_ns(10), Ps::from_ns(160));
        obs.span("write", "device_write", Ps::from_ns(200), Ps::from_ns(360));
        assert_eq!(obs.tracer().len(), 2);
        let h = obs.registry().histogram("device_write").expect("histogram");
        assert_eq!(h.count(), 2);
        assert!(h.mean() >= Ps::from_ns(150));
    }

    #[test]
    fn zero_capacity_selects_default() {
        let obs = Obs::enabled(0);
        assert_eq!(obs.tracer().capacity(), DEFAULT_TRACE_CAPACITY);
    }

    #[test]
    fn epoch_snapshot_json_has_every_field() {
        let e = EpochSnapshot {
            index: 1,
            end_access: 2000,
            end_time: Ps::from_us(5),
            ipc: 3.5,
            dedup_rate: 0.25,
            fingerprint_hit_rate: 0.5,
            write_buffer_depth: 3,
            busy_banks: 2,
            energy_pj: 999,
        };
        let json = e.to_json();
        for key in [
            "index",
            "end_access",
            "end_time_ns",
            "ipc",
            "dedup_rate",
            "fingerprint_hit_rate",
            "write_buffer_depth",
            "busy_banks",
            "energy_pj",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let arr = epochs_to_json(&[e, e]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"index\"").count(), 2);
    }

    #[test]
    fn obs_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
        assert_send_sync::<Tracer>();
        assert_send_sync::<Registry>();
        assert_send_sync::<EpochSnapshot>();
    }
}

//! A bounded ring-buffer event tracer exporting Chrome trace-event JSON.
//!
//! The format is the "JSON Array Format" documented by the Chromium
//! tracing project and accepted by Perfetto: an object with a
//! `traceEvents` array of events whose `ph` field distinguishes complete
//! spans (`"X"`), instants (`"i"`) and counter samples (`"C"`), with
//! timestamps and durations in microseconds.

use std::collections::VecDeque;

use esd_sim::Ps;

use crate::metrics::{json_f64, json_str};

/// What kind of trace event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`): a named interval with a duration.
    Span,
    /// An instantaneous event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`): Perfetto renders these as a track.
    Counter,
}

/// One recorded event. Names and categories are `&'static str` so
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span/instant/counter label).
    pub name: &'static str,
    /// Category, used by trace viewers for filtering.
    pub cat: &'static str,
    /// Span, instant or counter.
    pub kind: EventKind,
    /// Start timestamp (simulated time).
    pub ts: Ps,
    /// Duration; zero for instants and counters.
    pub dur: Ps,
    /// Sample value; meaningful for counters only.
    pub value: f64,
}

impl TraceEvent {
    /// Renders this event as one Chrome trace-event JSON object.
    /// Timestamps and durations are microseconds per the format.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let ts = json_f64(self.ts.as_ps() as f64 / 1e6);
        match self.kind {
            EventKind::Span => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1}}",
                json_str(self.name),
                json_str(self.cat),
                ts,
                json_f64(self.dur.as_ps() as f64 / 1e6),
            ),
            EventKind::Instant => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"ts\":{},\"s\":\"g\",\"pid\":1,\"tid\":1}}",
                json_str(self.name),
                json_str(self.cat),
                ts,
            ),
            EventKind::Counter => format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"value\":{}}}}}",
                json_str(self.name),
                json_str(self.cat),
                ts,
                json_f64(self.value),
            ),
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s: a flight recorder that keeps
/// the most recent `capacity` events and counts what it had to drop.
#[derive(Debug, Clone, PartialEq)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(crate::DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer needs a nonzero capacity");
        Tracer {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full (oldest first).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Records an already-built event. Used when merging per-shard trace
    /// buffers into one timeline: the merger re-pushes events in timestamp
    /// order, and the ring drops the oldest as usual if they overflow.
    pub fn push_event(&mut self, event: TraceEvent) {
        self.push(event);
    }

    /// Adds to the dropped-event count without recording anything. Lets a
    /// merged tracer carry forward the drops its source buffers already
    /// suffered.
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Records a complete span `start..end`.
    pub fn push_span(&mut self, cat: &'static str, name: &'static str, start: Ps, end: Ps) {
        self.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Span,
            ts: start,
            dur: end.saturating_sub(start),
            value: 0.0,
        });
    }

    /// Records an instantaneous event at `ts`.
    pub fn push_instant(&mut self, cat: &'static str, name: &'static str, ts: Ps) {
        self.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            ts,
            dur: Ps::ZERO,
            value: 0.0,
        });
    }

    /// Records a counter sample at `ts`.
    pub fn push_counter(&mut self, cat: &'static str, name: &'static str, ts: Ps, value: f64) {
        self.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Counter,
            ts,
            dur: Ps::ZERO,
            value,
        });
    }

    /// Exports the buffer as a Chrome trace-event JSON document.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_chrome_json());
        }
        out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut t = Tracer::with_capacity(2);
        t.push_instant("a", "first", Ps(1));
        t.push_instant("a", "second", Ps(2));
        t.push_instant("a", "third", Ps(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let names: Vec<&str> = t.events().map(|e| e.name).collect();
        assert_eq!(names, ["second", "third"]);
    }

    #[test]
    fn span_event_renders_microseconds() {
        let mut t = Tracer::with_capacity(4);
        t.push_span("write", "device_write", Ps::from_ns(1500), Ps::from_ns(2500));
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1.500000"), "{json}");
        assert!(json.contains("\"dur\":1.000000"), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn instant_and_counter_phases() {
        let mut t = Tracer::with_capacity(4);
        t.push_instant("ecc", "ecc_uncorrectable", Ps::from_ns(10));
        t.push_counter("occupancy", "busy_banks", Ps::from_ns(20), 3.0);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":3"));
    }

    #[test]
    fn braces_stay_balanced() {
        let mut t = Tracer::with_capacity(8);
        t.push_span("w", "a", Ps(0), Ps(5));
        t.push_instant("w", "b", Ps(1));
        t.push_counter("w", "c", Ps(2), 1.5);
        let json = t.to_chrome_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_panics() {
        let _ = Tracer::with_capacity(0);
    }
}

//! The metrics registry: named counters, gauges and latency histograms.
//!
//! Names are `&'static str` and the registry holds a handful of entries,
//! so lookup is a linear scan over interned pointers — cheaper than
//! hashing at these sizes and free of dependencies.

use esd_sim::{LatencyHistogram, Ps};

/// Formats a float for JSON: six decimal places, non-finite mapped to 0
/// (JSON has no NaN/Infinity).
#[must_use]
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_owned()
    }
}

/// Escapes and quotes a string for JSON.
#[must_use]
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A registry of named counters, gauges and log-bucketed latency
/// histograms.
///
/// # Examples
///
/// ```
/// use esd_obs::Registry;
/// use esd_sim::Ps;
///
/// let mut r = Registry::new();
/// r.counter_add("writes", 2);
/// r.gauge_set("write_buffer_depth", 3.0);
/// r.histogram_record("device_write", Ps::from_ns(154));
/// assert_eq!(r.counter("writes"), Some(2));
/// assert!(r.to_json().contains("p999_ns"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, LatencyHistogram)>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name, n)),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        match self.gauges.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Records one latency sample into the histogram `name`.
    pub fn histogram_record(&mut self, name: &'static str, value: Ps) {
        match self.histograms.iter_mut().find(|(k, _)| *k == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(value);
                self.histograms.push((name, h));
            }
        }
    }

    /// The current value of counter `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }

    /// The current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }

    /// The histogram `name`, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.iter().find(|(k, _)| *k == name).map(|(_, h)| h)
    }

    /// All counters, in first-recorded order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// All gauges, in first-recorded order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().copied()
    }

    /// All histograms, in first-recorded order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, h)| (*k, h))
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, histograms merge).
    pub fn merge(&mut self, other: &Registry) {
        for &(name, v) in &other.counters {
            self.counter_add(name, v);
        }
        for &(name, v) in &other.gauges {
            self.gauge_set(name, v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name, h.clone())),
            }
        }
    }

    /// Renders the registry as a JSON object with `counters`, `gauges`
    /// and `histograms` sections; each histogram reports count, mean and
    /// the p50/p95/p99/p999 tail in nanoseconds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), histogram_json(h)));
        }
        out.push_str("}}");
        out
    }
}

/// Renders one histogram's summary (count, mean, p50/p95/p99/p999 in
/// nanoseconds) as a JSON object.
#[must_use]
pub fn histogram_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
         \"p999_ns\":{}}}",
        h.count(),
        json_f64(h.mean().as_ns_f64()),
        json_f64(h.percentile(0.50).as_ns_f64()),
        json_f64(h.percentile(0.95).as_ns_f64()),
        json_f64(h.percentile(0.99).as_ns_f64()),
        json_f64(h.percentile(0.999).as_ns_f64()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = Registry::new();
        r.counter_add("scrub_ticks", 1);
        r.counter_add("scrub_ticks", 2);
        r.gauge_set("depth", 1.0);
        r.gauge_set("depth", 4.0);
        assert_eq!(r.counter("scrub_ticks"), Some(3));
        assert_eq!(r.gauge("depth"), Some(4.0));
        assert_eq!(r.counter("missing"), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn histograms_record_and_summarize() {
        let mut r = Registry::new();
        for ns in [10, 20, 30, 40] {
            r.histogram_record("lat", Ps::from_ns(ns));
        }
        let h = r.histogram("lat").expect("histogram");
        assert_eq!(h.count(), 4);
        let json = histogram_json(h);
        for key in ["count", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "p999_ns"] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("x", 1);
        b.counter_add("x", 2);
        b.counter_add("y", 5);
        b.gauge_set("g", 7.0);
        a.histogram_record("h", Ps(100));
        b.histogram_record("h", Ps(300));
        b.histogram_record("h2", Ps(1));
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.counter("y"), Some(5));
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    fn registry_json_is_balanced_and_keyed() {
        let mut r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.histogram_record("h", Ps(42));
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"c\"", "\"g\"", "\"h\""] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "0.000000");
    }
}
